"""Adaptive chunk sizing: convergence, bounds, engine integration."""

import pytest

from repro.engine import (
    AdaptiveChunkSizer,
    ChunkRunner,
    ExecutionOptions,
    Task,
    collect,
    plan_chunks_adaptive,
)
from repro.qec import repetition_code_memory


def make_task(max_shots=4_000):
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=0.05, measure_flip_probability=0.05
    )
    return Task(circuit, decoder="compiled-matching", max_shots=max_shots)


class TestSizerUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveChunkSizer(100, target_seconds=0)
        with pytest.raises(ValueError):
            AdaptiveChunkSizer(100, min_shots=0)
        with pytest.raises(ValueError):
            AdaptiveChunkSizer(100, min_shots=500, max_shots=100)
        with pytest.raises(ValueError):
            AdaptiveChunkSizer(100, smoothing=0)
        with pytest.raises(ValueError):
            AdaptiveChunkSizer(100, max_step=1.0)

    def test_initial_is_clamped(self):
        sizer = AdaptiveChunkSizer(10, min_shots=256, max_shots=1024)
        assert sizer.next_shots() == 256
        sizer = AdaptiveChunkSizer(10**9, min_shots=256, max_shots=1024)
        assert sizer.next_shots() == 1024

    def test_converges_to_target_latency(self):
        """At a steady 10k shots/sec and a 0.25s target the size should
        settle at ~2500 shots."""
        sizer = AdaptiveChunkSizer(
            256, target_seconds=0.25, min_shots=64, max_shots=65_536
        )
        for _ in range(20):
            shots = sizer.next_shots()
            sizer.observe(shots, shots / 10_000)
        assert sizer.next_shots() == 2_500
        assert sizer.observations == 20

    def test_never_leaves_bounds_under_noisy_rates(self):
        sizer = AdaptiveChunkSizer(
            512, target_seconds=0.1, min_shots=256, max_shots=2_048
        )
        # Wildly alternating rates: clamping must hold at every step.
        for rate in [10, 10**7, 25, 10**6, 1, 10**8] * 5:
            shots = sizer.next_shots()
            assert 256 <= shots <= 2_048
            sizer.observe(shots, shots / rate)
        assert 256 <= sizer.next_shots() <= 2_048

    def test_single_observation_moves_at_most_max_step(self):
        sizer = AdaptiveChunkSizer(
            1_000, target_seconds=1.0, min_shots=1, max_shots=10**9,
            max_step=2.0,
        )
        sizer.observe(1_000, 0.0001)  # suggests a 10^7-shot chunk
        assert sizer.next_shots() == 2_000
        sizer = AdaptiveChunkSizer(
            1_000, target_seconds=1.0, min_shots=1, max_shots=10**9,
            max_step=2.0,
        )
        sizer.observe(1_000, 1_000)  # suggests a 1-shot chunk
        assert sizer.next_shots() == 500

    def test_zero_inputs_ignored(self):
        sizer = AdaptiveChunkSizer(500)
        sizer.observe(0, 1.0)
        sizer.observe(100, 0.0)
        assert sizer.observations == 0
        assert sizer.next_shots() == 500


class TestPlanAdaptive:
    def test_budget_exactly_consumed_within_bounds(self):
        task = make_task(max_shots=4_000)
        sizer = AdaptiveChunkSizer(
            300, target_seconds=0.05, min_shots=100, max_shots=1_000
        )
        shots = []
        with ChunkRunner(workers=1) as runner:
            for result in runner.run(plan_chunks_adaptive(task, 3, sizer)):
                sizer.observe(result.shots, result.seconds)
                shots.append(result.shots)
        assert sum(shots) == 4_000
        # Every chunk except a final remainder respects the bounds.
        assert all(s <= 1_000 for s in shots)
        assert all(s >= 100 for s in shots[:-1])

    def test_chunk_indices_stay_sequential(self):
        task = make_task(max_shots=1_500)
        sizer = AdaptiveChunkSizer(400, min_shots=100, max_shots=800)
        indices = [
            spec.chunk_index
            for spec in plan_chunks_adaptive(task, 3, sizer)
        ]
        assert indices == list(range(len(indices)))


class TestCollectIntegration:
    def test_adaptive_collect_gathers_full_budget(self):
        stats = collect(
            [make_task(max_shots=3_000)],
            options=ExecutionOptions(
                base_seed=11,
                adaptive_chunks=True,
                chunk_shots=250,
                min_chunk_shots=100,
                max_chunk_shots=1_000,
            ),
        )[0]
        assert stats.shots == 3_000
        assert stats.chunks >= 3_000 // 1_000

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(target_chunk_seconds=0)
        with pytest.raises(ValueError):
            ExecutionOptions(min_chunk_shots=0)
        with pytest.raises(ValueError):
            ExecutionOptions(min_chunk_shots=100, max_chunk_shots=50)
        with pytest.raises(ValueError):
            ExecutionOptions(transport="carrier-pigeon")
