"""Shared-memory transport: identity, lifecycle, warm workers, fallback."""

import glob
import pickle

import pytest

import repro.obs as obs
from repro.engine import ChunkRunner, Task, plan_chunks, warm_spec
from repro.engine import shm
from repro.qec import repetition_code_memory

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)


def make_task(
    backend="frame", decoder="compiled-matching", max_shots=400, p=0.05
):
    # Vary ``p`` to get a fingerprint no other test compiled: forked
    # workers inherit the parent's sampler cache, so a shared circuit
    # would turn warm-broadcast compiles into hits.
    circuit = repetition_code_memory(
        3, rounds=2, data_flip_probability=p, measure_flip_probability=p
    )
    return Task(
        circuit, decoder=decoder, sampler=backend, max_shots=max_shots
    )


def leaked_segments():
    return glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*")


class TestArena:
    def test_blob_round_trip_and_dedupe(self):
        with shm.SlabArena(slot_count=2) as arena:
            ref = arena.put_blob("key", b"payload")
            assert shm.read_blob(ref) == b"payload"
            # Write-once: the same key returns the first ref untouched.
            assert arena.put_blob("key", b"different") == ref
            assert arena.has_blob("key")
        shm.detach_all()

    def test_slab_grows_for_large_blobs(self):
        with shm.SlabArena(slot_count=1, slab_bytes=64) as arena:
            big = bytes(range(256)) * 16
            assert shm.read_blob(arena.put_blob("big", big)) == big
        shm.detach_all()

    def test_slot_token_guards_stale_writes(self):
        with shm.SlabArena(slot_count=1) as arena:
            ref = arena.slot_ref(0)
            assert shm.write_slot(ref, token=7, payload=b"old run")
            assert arena.read_slot(0, token=8) is None
            assert arena.read_slot(0, token=7) == b"old run"
        shm.detach_all()

    def test_oversized_slot_write_is_refused(self):
        with shm.SlabArena(slot_count=1, slot_bytes=64) as arena:
            assert not shm.write_slot(arena.slot_ref(0), 1, b"x" * 64)

    def test_close_unlinks_everything_and_is_idempotent(self):
        arena = shm.SlabArena(slot_count=2)
        arena.put_blob("a", b"data")
        assert leaked_segments()
        arena.close()
        arena.close()
        assert arena.closed
        assert not leaked_segments()


GRID = [
    (backend, decoder)
    for backend in ("frame", "frame-interp", "symbolic")
    for decoder in ("compiled-matching", "matching")
]


class TestTransportIdentity:
    @pytest.mark.parametrize("backend,decoder", GRID)
    def test_serial_pickle_shm_bitwise_identical(self, backend, decoder):
        specs = plan_chunks(make_task(backend, decoder), 3, 100)
        counts = {}
        with ChunkRunner(workers=1) as runner:
            counts["serial"] = [
                (r.chunk_index, r.shots, r.errors) for r in runner.run(specs)
            ]
        for transport in ("pickle", "shm"):
            with ChunkRunner(workers=2, transport=transport) as runner:
                assert runner.active_transport == transport
                counts[transport] = [
                    (r.chunk_index, r.shots, r.errors)
                    for r in runner.run(specs)
                ]
        assert counts["pickle"] == counts["serial"]
        assert counts["shm"] == counts["serial"]

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ChunkRunner(workers=2, transport="bogus")

    def test_env_override_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        with ChunkRunner(workers=2, transport="auto") as runner:
            assert runner.active_transport == "pickle"

    def test_serial_runner_stays_in_process(self):
        with ChunkRunner(workers=1, transport="shm") as runner:
            assert runner.active_transport == "inproc"


class TestLifecycle:
    def test_no_leaked_segments_after_failed_run(self):
        """A consumer that blows up mid-run must leave /dev/shm clean."""
        specs = plan_chunks(make_task(max_shots=1200), 3, 100)
        with pytest.raises(RuntimeError, match="consumer failed"):
            with ChunkRunner(workers=2, transport="shm") as runner:
                for _result in runner.run(specs):
                    raise RuntimeError("consumer failed")
        assert not leaked_segments()

    def test_no_leaked_segments_with_reorder_held_results(self):
        """An exception raised while later chunks still sit in the
        reorder buffer (and leases are outstanding) must leave /dev/shm
        clean: the arena is unlinked on the exception path too."""
        specs = plan_chunks(make_task(max_shots=3000, p=0.04), 3, 100)
        with pytest.raises(RuntimeError, match="mid-stream"):
            with ChunkRunner(workers=2, transport="shm") as runner:
                for result in runner.run(specs):
                    if result.chunk_index >= 3:
                        raise RuntimeError("mid-stream consumer failure")
        assert not leaked_segments()

    def test_exit_unlinks_arena_before_stopping_workers(self, monkeypatch):
        """On the exception path the arena must be closed *before* the
        workers are terminated, so no segment can outlive the runner
        even if a terminate wedges; clean exits stop gracefully first
        (workers may still be parking results)."""
        specs = plan_chunks(make_task(max_shots=2000, p=0.03), 3, 100)
        seen = {}
        with pytest.raises(RuntimeError, match="boom"):
            with ChunkRunner(workers=2, transport="shm") as runner:
                pool = runner._pool
                real_stop = pool.stop

                def spying_stop(graceful=True):
                    seen["graceful"] = graceful
                    seen["leaked_at_stop"] = leaked_segments()
                    return real_stop(graceful=graceful)

                monkeypatch.setattr(pool, "stop", spying_stop)
                next(runner.run(specs))
                raise RuntimeError("boom")
        assert seen["graceful"] is False
        assert seen["leaked_at_stop"] == []
        assert not leaked_segments()

    def test_no_leaked_segments_after_clean_run(self):
        specs = plan_chunks(make_task(), 3, 100)
        with ChunkRunner(workers=2, transport="shm") as runner:
            list(runner.run(specs))
        assert not leaked_segments()

    def test_slot_overflow_falls_back_to_pickle_wire(self):
        """Telemetry too big for its slot rides the pickle wire instead;
        counts and spans both still arrive."""
        obs.enable(tracing=True, metrics=True)
        specs = plan_chunks(make_task(), 3, 100)
        with ChunkRunner(workers=2, transport="shm", slot_bytes=80) as runner:
            results = list(runner.run(specs))
        assert [r.chunk_index for r in results] == list(range(len(specs)))
        assert all(not r.slot_payload for r in results)
        # The workers' telemetry still made it into the parent registry.
        assert obs.registry().value("repro_shm_slot_payload_bytes_total") is None
        assert sum(
            m.value
            for _, m in obs.registry().select("repro_chunks_total")
        ) == len(specs)


class TestHeaderOnlyTransport:
    def test_shm_transport_bytes_are_header_sized(self):
        obs.enable(tracing=False, metrics=True)
        task = make_task(max_shots=800)
        specs = plan_chunks(task, 3, 100)
        with ChunkRunner(workers=2, transport="shm") as runner:
            runner.warm(warm_spec(task, 3))
            results = list(runner.run(specs))
        reg = obs.registry()
        chunks = len(results)
        assert reg.value("repro_transport_spec_bytes_total") / chunks <= 1024
        assert reg.value("repro_transport_result_bytes_total") / chunks <= 1024
        # The circuit text crossed exactly once, via the slab.
        assert reg.value("repro_shm_blob_bytes_total") == len(
            task.circuit.to_text().encode()
        )

    def test_headers_are_smaller_than_pickled_specs(self):
        task = make_task()
        spec = plan_chunks(task, 3, 100)[0]
        with ChunkRunner(workers=2, transport="shm") as runner:
            header = runner._header_for(spec, slot_id=0)
            assert len(pickle.dumps(header)) < len(pickle.dumps(spec))


class TestWarmWorkers:
    def test_warm_compiles_once_per_worker(self):
        """After a warm broadcast, sampler compile count == workers —
        not chunks — and every chunk is a cache hit."""
        obs.enable(tracing=False, metrics=True)
        workers = 2
        task = make_task(max_shots=800, p=0.041)
        specs = plan_chunks(task, 3, 100)
        # Explicit empty fault plan: under the CI chaos leg's
        # REPRO_FAULTS a killed worker's replacement is re-warmed,
        # which is one extra (correct) compile this count can't allow.
        with ChunkRunner(
            workers=workers, transport="shm", fault_plan=""
        ) as runner:
            assert runner.warm(warm_spec(task, 3))
            # Idempotent: the same triple never broadcasts twice.
            assert not runner.warm(warm_spec(task, 3))
            list(runner.run(specs))
        reg = obs.registry()
        misses = sum(
            m.value
            for _, m in reg.select("repro_cache_misses_total", kind="sampler")
        )
        hits = sum(
            m.value
            for _, m in reg.select("repro_cache_hits_total", kind="sampler")
        )
        assert misses == workers
        assert hits == len(specs)
        assert reg.value("repro_warm_broadcasts_total") == 1

    def test_warm_is_noop_in_process(self):
        task = make_task()
        with ChunkRunner(workers=1) as runner:
            assert not runner.warm(warm_spec(task, 3))

    def test_warm_works_on_pickle_wire_too(self):
        obs.enable(tracing=False, metrics=True)
        task = make_task(max_shots=400, p=0.043)
        with ChunkRunner(
            workers=2, transport="pickle", fault_plan=""
        ) as runner:
            assert runner.warm(warm_spec(task, 3))
            list(runner.run(plan_chunks(task, 3, 100)))
        misses = sum(
            m.value
            for _, m in obs.registry().select(
                "repro_cache_misses_total", kind="sampler"
            )
        )
        assert misses == 2
