"""CFG lowering edge cases + structural properties over the real tree.

The snippet tests pin the tricky lowering semantics (finally inlining,
loop else clauses, exceptional edges); the property test then asserts
the two invariants the dataflow solver relies on — every block
reachable from entry, every block reaching exit — over every function
in the actual ``src/repro`` package.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cfg import build_cfg

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def cfg_of(source):
    module = ast.parse(textwrap.dedent(source))
    func = module.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func, build_cfg(func)


def blocks_containing(cfg, predicate):
    return [
        block
        for block in cfg.blocks.values()
        if any(predicate(stmt) for stmt in block.stmts)
    ]


def is_return_of(stmt, value):
    return (
        isinstance(stmt, ast.Return)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value == value
    )


class TestFinallySemantics:
    def test_return_in_finally_overrides_try_return(self):
        _, cfg = cfg_of(
            """
            def f():
                try:
                    return 1
                finally:
                    return 2
            """
        )
        # Every path out of the function ends in the finally's own
        # return: the inlined finally copy overrides the try's jump.
        exit_preds = cfg.block(cfg.exit).preds
        assert exit_preds
        for pred in exit_preds:
            last = cfg.block(pred).stmts[-1]
            assert is_return_of(last, 2)

    def test_jump_through_finally_inlines_its_body(self):
        _, cfg = cfg_of(
            """
            def f(flag):
                try:
                    if flag:
                        return 1
                    work()
                finally:
                    cleanup()
            """
        )
        # The cleanup() call must run on the early-return path too, so
        # it appears in (at least) two blocks: the inlined jump copy
        # and the shared normal-completion subgraph.
        def is_cleanup(stmt):
            return (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "cleanup"
            )

        assert len(blocks_containing(cfg, is_cleanup)) >= 2

    def test_exceptional_path_into_finally_is_an_exc_edge(self):
        _, cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                    return 1
                finally:
                    cleanup()
            """
        )
        # The body's only normal exit is the return (which inlines its
        # own finally copy), so the shared finally subgraph is reached
        # exclusively by the implicit in-body raise — and that edge
        # must be flagged exceptional so the solver joins over every
        # point of the body, not just its out-state.
        assert cfg.exc_edges
        for src, dst in cfg.exc_edges:
            assert dst in cfg.block(src).succs
            assert any(
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "cleanup"
                for stmt in cfg.block(dst).stmts
            )


class TestLoopElse:
    def test_while_else_runs_on_normal_exit_only(self):
        func, cfg = cfg_of(
            """
            def f(xs):
                while xs:
                    xs = step(xs)
                else:
                    done()
                return xs
            """
        )
        while_node = func.body[0]
        (header,) = blocks_containing(cfg, lambda s: s is while_node.test)
        (else_block,) = blocks_containing(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and isinstance(s.value, ast.Call)
            and isinstance(s.value.func, ast.Name)
            and s.value.func.id == "done",
        )
        (after,) = blocks_containing(cfg, lambda s: isinstance(s, ast.Return))
        # Normal loop exit goes through the else clause, never straight
        # to the statement after the loop.
        assert else_block.id in header.succs
        assert after.id not in header.succs
        assert after.id in else_block.succs

    def test_break_skips_the_else_clause(self):
        _, cfg = cfg_of(
            """
            def f(xs):
                while xs:
                    if found(xs):
                        break
                    xs = step(xs)
                else:
                    done()
                return xs
            """
        )
        (break_block,) = blocks_containing(
            cfg, lambda s: isinstance(s, ast.Break)
        )
        (after,) = blocks_containing(cfg, lambda s: isinstance(s, ast.Return))
        assert after.id in break_block.succs


class TestWith:
    def test_nested_with_stays_in_one_block(self):
        _, cfg = cfg_of(
            """
            def f(p, q):
                with open(p) as a:
                    with open(q) as b:
                        use(a, b)
                return 1
            """
        )
        # with introduces no control flow: both headers, the body call
        # and the return all lower into a single straight-line block.
        (block,) = [b for b in cfg.blocks.values() if b.stmts]
        kinds = [type(stmt).__name__ for stmt in block.stmts]
        assert kinds == ["With", "With", "Expr", "Return"]


class TestExceptHandlers:
    def test_bare_except_reraise_exits_without_reaching_tail(self):
        _, cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except:
                    log()
                    raise
                return 1
            """
        )
        (handler_block,) = blocks_containing(
            cfg, lambda s: isinstance(s, ast.ExceptHandler)
        )
        (tail,) = blocks_containing(cfg, lambda s: isinstance(s, ast.Return))
        # The re-raise leaves the function directly: the handler block
        # edges to exit and never falls through to `return 1`.
        assert cfg.exit in handler_block.succs
        assert tail.id not in handler_block.succs

    def test_try_body_has_exceptional_edge_to_handler(self):
        _, cfg = cfg_of(
            """
            def f():
                try:
                    a = work()
                except ValueError:
                    a = None
                return a
            """
        )
        (handler_block,) = blocks_containing(
            cfg, lambda s: isinstance(s, ast.ExceptHandler)
        )
        assert any(dst == handler_block.id for _, dst in cfg.exc_edges)


def _real_functions():
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield pytest.param(
                    node, id=f"{path.relative_to(SRC)}::{node.name}"
                )


@pytest.mark.parametrize("func", _real_functions())
def test_every_real_function_cfg_is_well_formed(func):
    """Property test over the actual tree: every block is reachable
    from entry AND reaches exit, edges are symmetric, and exceptional
    edges are real edges between live blocks."""
    cfg = build_cfg(func)
    ids = set(cfg.blocks)
    assert cfg.entry in ids and cfg.exit in ids
    assert cfg.reachable_from_entry() == ids
    assert cfg.reaches_exit() == ids
    assert set(cfg.rpo()) == ids
    for block in cfg.blocks.values():
        for succ in block.succs:
            assert block.id in cfg.block(succ).preds
        for pred in block.preds:
            assert block.id in cfg.block(pred).succs
    for src, dst in cfg.exc_edges:
        assert src in ids and dst in ids
        assert dst in cfg.block(src).succs
