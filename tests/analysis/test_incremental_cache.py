"""Incremental cache semantics + PARSE000 regression.

The cache is an accelerator only: cold and warm runs of the same tree
must produce byte-identical JSON reports, and editing a file must
invalidate exactly what the edit affects (content-hash keys, no
timestamps involved).
"""

import json

from repro.analysis import analyze, render_json
from repro.analysis.cache import AnalysisCache, CACHE_DIR_NAME

FILES = {
    "helper.py": (
        "def fetch(sampler, shots):\n"
        "    return sampler.sample_detectors(shots)\n"
    ),
    "mix.py": (
        "from helper import fetch\n"
        "def run(sampler, shots):\n"
        "    rows = fetch(sampler, shots)\n"
        "    return popcount_rows(rows)\n"
    ),
}


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return [tmp_path / rel for rel in files]


def run(tmp_path, files, **kwargs):
    return analyze(
        write_tree(tmp_path, files),
        root=tmp_path,
        include_context=False,
        **kwargs,
    )


class TestColdWarmIdentity:
    def test_cold_and_warm_reports_byte_identical(self, tmp_path):
        cold = render_json(run(tmp_path, FILES))
        assert (tmp_path / CACHE_DIR_NAME).is_dir()
        warm = render_json(run(tmp_path, FILES))
        assert cold == warm
        assert json.loads(cold)["counts"] == {"PACK002": 1}

    def test_no_cache_run_matches_cached_run(self, tmp_path):
        cached = render_json(run(tmp_path, FILES))
        uncached = render_json(run(tmp_path, FILES, use_cache=False))
        assert cached == uncached

    def test_jobs_run_matches_serial_run(self, tmp_path):
        serial = render_json(run(tmp_path, FILES))
        parallel = render_json(run(tmp_path, FILES, jobs=4))
        assert serial == parallel


class TestInvalidation:
    def test_edit_changes_the_verdict(self, tmp_path):
        result = run(tmp_path, FILES)
        assert [f.rule for f in result.findings] == ["PACK002"]
        # Fix the helper to return packed rows: the caller's cached
        # findings must not survive, because the resolved summary
        # table (part of every findings key) changed.
        fixed = dict(FILES)
        fixed["helper.py"] = (
            "def fetch(sampler, shots):\n"
            "    return sampler.sample_detectors_packed(shots)\n"
        )
        result = run(tmp_path, fixed)
        assert result.findings == []
        # And back again: stale entries must not resurrect either way.
        result = run(tmp_path, FILES)
        assert [f.rule for f in result.findings] == ["PACK002"]

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        run(tmp_path, FILES)
        cache_dir = tmp_path / CACHE_DIR_NAME
        entries = list(cache_dir.rglob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{not json")
        result = run(tmp_path, FILES)
        assert [f.rule for f in result.findings] == ["PACK002"]


class TestCacheStore:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = AnalysisCache(tmp_path / "store")
        assert cache.get("section", "key") is None
        cache.put("section", "key", {"x": [1, 2]})
        assert cache.get("section", "key") == {"x": [1, 2]}

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = AnalysisCache(None)
        cache.put("section", "key", {"x": 1})
        assert cache.get("section", "key") is None
        assert not cache.enabled


class TestPARSE000:
    BROKEN = "def broken(:\n    return 1\n"

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        files = dict(FILES)
        files["broken.py"] = self.BROKEN
        result = run(tmp_path, files)
        rules = sorted({f.rule for f in result.findings})
        assert rules == ["PACK002", "PARSE000"]
        (parse,) = [f for f in result.findings if f.rule == "PARSE000"]
        assert parse.path == "broken.py"
        assert parse.message.startswith("SyntaxError:")
        assert parse.line >= 1
        assert result.exit_code == 1

    def test_other_files_still_fully_analyzed(self, tmp_path):
        # The broken file must not shadow findings elsewhere in the
        # tree — the rest of the run proceeds normally.
        files = dict(FILES)
        files["broken.py"] = self.BROKEN
        result = run(tmp_path, files)
        assert any(f.rule == "PACK002" for f in result.findings)

    def test_clean_tree_with_only_broken_file(self, tmp_path):
        result = run(tmp_path, {"broken.py": self.BROKEN})
        assert [f.rule for f in result.findings] == ["PARSE000"]
