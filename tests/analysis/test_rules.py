"""Per-rule fixtures: one positive, one negative, one suppressed each.

Every fixture is a self-contained snippet tree written under
``tmp_path`` and analyzed with ``include_context=False``, so these
tests exercise the rules' own logic, not the shape of the real
``repro`` package (``test_self.py`` covers that).
"""

from repro.analysis import analyze


def scan(tmp_path, files, **kwargs):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return analyze(
        [tmp_path / rel for rel in files],
        root=tmp_path,
        include_context=False,
        **kwargs,
    )


def rules_found(result):
    return sorted({f.rule for f in result.findings})


class TestRNG001:
    def test_np_legacy_call_flagged(self, tmp_path):
        result = scan(tmp_path, {"roll.py": (
            "import numpy as np\n"
            "def roll():\n"
            "    return np.random.randint(10)\n"
        )})
        assert rules_found(result) == ["RNG001"]
        assert "np.random.randint" in result.findings[0].message

    def test_stdlib_random_flagged(self, tmp_path):
        result = scan(tmp_path, {"pick.py": (
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n"
        )})
        assert rules_found(result) == ["RNG001"]

    def test_generator_usage_clean(self, tmp_path):
        result = scan(tmp_path, {"ok.py": (
            "import numpy as np\n"
            "def roll(rng):\n"
            "    return rng.integers(10)\n"
            "def fresh():\n"
            "    return np.random.default_rng(0)\n"
        )})
        assert result.findings == []

    def test_repro_rng_module_exempt(self, tmp_path):
        result = scan(tmp_path, {
            "repro/__init__.py": "",
            "repro/rng.py": (
                "import numpy as np\n"
                "def as_generator(seed_or_rng=None):\n"
                "    if isinstance(seed_or_rng, np.random.Generator):\n"
                "        return seed_or_rng\n"
                "    return np.random.default_rng(seed_or_rng)\n"
            ),
        })
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"roll.py": (
            "import numpy as np\n"
            "def roll():\n"
            "    return np.random.randint(10)  # repro: ignore[RNG001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["RNG001"]


class TestRNG002:
    FILES = {"repro/__init__.py": ""}

    def test_seed_bypassing_as_generator_flagged(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "import numpy as np\n"
            "def draw(n, seed=None):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random(n)\n"
        )})
        assert rules_found(result) == ["RNG002"]
        assert "draw()" in result.findings[0].message

    def test_as_generator_clean(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "from repro.rng import as_generator\n"
            "def draw(n, seed=None):\n"
            "    return as_generator(seed).random(n)\n"
        )})
        assert result.findings == []

    def test_forwarding_seed_clean(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "from repro.workloads import build\n"
            "def draw(n, seed=None):\n"
            "    return build(n, seed)\n"
        )})
        assert result.findings == []

    def test_generator_isinstance_branch_clean(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "import numpy as np\n"
            "def draw(n, seed=None):\n"
            "    if isinstance(seed, np.random.Generator):\n"
            "        return seed.random(n)\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )})
        assert result.findings == []

    def test_private_function_exempt(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "import numpy as np\n"
            "def _draw(n, seed=None):\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )})
        assert result.findings == []

    def test_non_repro_module_exempt(self, tmp_path):
        result = scan(tmp_path, {"script.py": (
            "import numpy as np\n"
            "def draw(n, seed=None):\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )})
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {**self.FILES, "repro/sampling.py": (
            "import numpy as np\n"
            "def draw(n, seed=None):  # repro: ignore[RNG002]\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["RNG002"]


class TestFORK001:
    def test_unreset_mutation_flagged(self, tmp_path):
        result = scan(tmp_path, {"pool.py": (
            "from multiprocessing import Pool\n"
            "_CACHE = {}\n"
            "def work(x):\n"
            "    _CACHE[x] = x * 2\n"
            "    return _CACHE[x]\n"
            "def main(items):\n"
            "    with Pool(2) as pool:\n"
            "        return pool.map(work, items)\n"
        )})
        assert rules_found(result) == ["FORK001"]
        assert "_CACHE" in result.findings[0].message

    def test_initializer_reset_clean(self, tmp_path):
        result = scan(tmp_path, {"pool.py": (
            "from multiprocessing import Pool\n"
            "_CACHE = {}\n"
            "def _init():\n"
            "    _CACHE.clear()\n"
            "def work(x):\n"
            "    _CACHE[x] = x * 2\n"
            "    return _CACHE[x]\n"
            "def main(items):\n"
            "    with Pool(2, initializer=_init) as pool:\n"
            "        return pool.map(work, items)\n"
        )})
        assert result.findings == []

    def test_guarded_memo_clean(self, tmp_path):
        result = scan(tmp_path, {"pool.py": (
            "from multiprocessing import Pool\n"
            "_CACHE = {}\n"
            "def work(x):\n"
            "    if x not in _CACHE:\n"
            "        _CACHE[x] = x * 2\n"
            "    return _CACHE[x]\n"
            "def main(items):\n"
            "    with Pool(2) as pool:\n"
            "        return pool.map(work, items)\n"
        )})
        assert result.findings == []

    def test_transitive_callee_flagged(self, tmp_path):
        result = scan(tmp_path, {"pool.py": (
            "from multiprocessing import Pool\n"
            "_SEEN = []\n"
            "def _record(x):\n"
            "    _SEEN.append(x)\n"
            "def work(x):\n"
            "    _record(x)\n"
            "    return x\n"
            "def main(items):\n"
            "    with Pool(2) as pool:\n"
            "        return pool.imap_unordered(work, items)\n"
        )})
        assert rules_found(result) == ["FORK001"]

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"pool.py": (
            "from multiprocessing import Pool\n"
            "_CACHE = {}\n"
            "def work(x):\n"
            "    _CACHE[x] = x * 2  # repro: ignore[FORK001]\n"
            "    return _CACHE[x]\n"
            "def main(items):\n"
            "    with Pool(2) as pool:\n"
            "        return pool.map(work, items)\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["FORK001"]


class TestSHM001:
    def test_create_without_unlink_flagged(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def grab(size):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    return seg.name\n"
        )})
        # The syntactic rule and the flow-sensitive path rule both see
        # this leak (returning seg.name keeps the handle captive).
        assert rules_found(result) == ["RES001", "SHM001"]

    def test_unlink_in_finally_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def probe(size):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    try:\n"
            "        return seg.name\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )})
        assert result.findings == []

    def test_finalize_backstop_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "import weakref\n"
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def _unlink_all(segments):\n"
            "    for seg in segments:\n"
            "        seg.unlink()\n"
            "class Arena:\n"
            "    def __init__(self):\n"
            "        self.segments = []\n"
            "        weakref.finalize(self, _unlink_all, self.segments)\n"
            "    def grow(self, size):\n"
            "        self.segments.append(SharedMemory(create=True, size=size))\n"
        )})
        assert result.findings == []

    def test_attach_existing_segment_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def attach(name):\n"
            "    return SharedMemory(name=name)\n"
        )})
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def grab(size):\n"
            "    seg = SharedMemory(create=True, size=size)  "
            "# repro: ignore[SHM001]\n"
            "    return seg.name\n"
        )})
        # Suppressing SHM001 does not blanket-silence the overlapping
        # flow-sensitive RES001 finding on the same acquisition.
        assert rules_found(result) == ["RES001"]
        assert [f.rule for f in result.suppressed] == ["SHM001"]


class TestPACK001:
    """PACK001 now covers only module-level (import-time) statements;
    function bodies moved to the flow-sensitive PACK002."""

    def test_module_level_mix_flagged(self, tmp_path):
        result = scan(tmp_path, {"wire.py": (
            "rows = sample_detectors(1024)\n"
            "counts = popcount_rows(rows)\n"
        )})
        assert rules_found(result) == ["PACK001"]
        assert "module level" in result.findings[0].message

    def test_module_level_conversion_clean(self, tmp_path):
        result = scan(tmp_path, {"wire.py": (
            "rows = sample_detectors(1024)\n"
            "packed = pack_rows(rows)\n"
            "counts = popcount_rows(packed)\n"
        )})
        assert result.findings == []

    def test_function_body_left_to_pack002(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def run(sampler, decoder, shots):\n"
            "    rows = sampler.sample_detectors(shots)\n"
            "    return decoder.decode_batch_packed(rows)\n"
        )})
        assert "PACK001" not in rules_found(result)

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"wire.py": (
            "rows = sample_detectors(1024)\n"
            "counts = popcount_rows(rows)  # repro: ignore[PACK001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["PACK001"]


class TestPACK002:
    def test_unpacked_into_packed_consumer_flagged(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def run(sampler, decoder, shots):\n"
            "    rows = sampler.sample_detectors(shots)\n"
            "    return decoder.decode_batch_packed(rows)\n"
        )})
        assert rules_found(result) == ["PACK002"]
        assert "'rows'" in result.findings[0].message

    def test_double_pack_flagged(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "from repro.gf2.bitops import pack_rows\n"
            "def run(sampler, shots):\n"
            "    packed = sampler.sample_detectors_packed(shots)\n"
            "    return pack_rows(packed)\n"
        )})
        assert rules_found(result) == ["PACK002"]

    def test_explicit_conversion_clean(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "from repro.gf2.bitops import pack_rows, popcount_rows\n"
            "def run(sampler, shots, width):\n"
            "    rows = sampler.sample_detectors(shots)\n"
            "    packed = pack_rows(rows)\n"
            "    return popcount_rows(packed)\n"
        )})
        assert result.findings == []

    def test_reassignment_clears_mark(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def run(sampler, decoder, shots, transform):\n"
            "    rows = sampler.sample_detectors(shots)\n"
            "    rows = transform(rows)\n"
            "    return decoder.decode_batch_packed(rows)\n"
        )})
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def run(sampler, decoder, shots):\n"
            "    rows = sampler.sample_detectors(shots)\n"
            "    return decoder.decode_batch_packed(rows)  "
            "# repro: ignore[PACK002]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["PACK002"]


class TestREG001:
    REGISTRY_PKG = {
        "pkg/__init__.py": "",
        "pkg/impls.py": (
            "class FancyDecoder:\n"
            "    def __init__(self, dem):\n"
            "        self.dem = dem\n"
        ),
        "pkg/registry.py": (
            "from pkg.impls import FancyDecoder\n"
            "_REGISTRY = {}\n"
            "def register_decoder(name, factory):\n"
            "    _REGISTRY[name] = factory\n"
            "register_decoder('fancy', lambda dem: FancyDecoder(dem))\n"
        ),
    }

    def test_direct_instantiation_flagged(self, tmp_path):
        result = scan(tmp_path, {**self.REGISTRY_PKG, "pkg/offender.py": (
            "from pkg.impls import FancyDecoder\n"
            "def build(dem):\n"
            "    return FancyDecoder(dem)\n"
        )})
        assert "REG001" in rules_found(result)
        reg = [f for f in result.findings if f.rule == "REG001"]
        assert reg[0].path.endswith("offender.py")

    def test_registry_and_defining_modules_allowed(self, tmp_path):
        result = scan(tmp_path, {**self.REGISTRY_PKG, "pkg/maker.py": (
            "from pkg.impls import FancyDecoder\n"
        )})
        reg = [f for f in result.findings if f.rule == "REG001"]
        assert reg == []

    def test_tests_directory_exempt(self, tmp_path):
        result = scan(tmp_path, {**self.REGISTRY_PKG, "tests/test_fancy.py": (
            "from pkg.impls import FancyDecoder\n"
            "def test_build():\n"
            "    assert FancyDecoder(object()).dem is not None\n"
        )})
        reg = [f for f in result.findings if f.rule == "REG001"]
        assert reg == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {**self.REGISTRY_PKG, "pkg/offender.py": (
            "from pkg.impls import FancyDecoder\n"
            "def build(dem):\n"
            "    return FancyDecoder(dem)  # repro: ignore[REG001]\n"
        )})
        reg = [f for f in result.findings if f.rule == "REG001"]
        assert reg == []
        assert [f.rule for f in result.suppressed] == ["REG001"]


class TestOBS001:
    def test_counter_in_shot_loop_flagged(self, tmp_path):
        result = scan(tmp_path, {"loop.py": (
            "import repro.obs as obs\n"
            "def sample(shots):\n"
            "    for shot in range(shots):\n"
            "        obs.counter('repro_shots_total', 1)\n"
        )})
        assert rules_found(result) == ["OBS001"]

    def test_span_in_shot_while_loop_flagged(self, tmp_path):
        result = scan(tmp_path, {"loop.py": (
            "from repro.obs import span\n"
            "def sample(shots):\n"
            "    remaining_shots = shots\n"
            "    while remaining_shots:\n"
            "        with span('shot'):\n"
            "            remaining_shots -= 1\n"
        )})
        assert rules_found(result) == ["OBS001"]

    def test_per_chunk_telemetry_clean(self, tmp_path):
        result = scan(tmp_path, {"loop.py": (
            "import repro.obs as obs\n"
            "def sample(shots):\n"
            "    total = 0\n"
            "    for shot in range(shots):\n"
            "        total += 1\n"
            "    obs.counter('repro_shots_total', total)\n"
        )})
        assert result.findings == []

    def test_non_shot_loop_clean(self, tmp_path):
        result = scan(tmp_path, {"loop.py": (
            "import repro.obs as obs\n"
            "def process(chunks):\n"
            "    for chunk in chunks:\n"
            "        obs.counter('repro_chunks_total', 1)\n"
        )})
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"loop.py": (
            "import repro.obs as obs\n"
            "def sample(shots):\n"
            "    for shot in range(shots):\n"
            "        obs.counter('repro_shots_total', 1)  "
            "# repro: ignore[OBS001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["OBS001"]


class TestAPI001:
    def test_benchmark_deep_import_flagged(self, tmp_path):
        result = scan(tmp_path, {"benchmarks/bench_x.py": (
            "from repro.engine.shm import SlabArena\n"
        )})
        assert rules_found(result) == ["API001"]
        assert "repro.engine.shm" in result.findings[0].message

    def test_example_deep_import_flagged(self, tmp_path):
        result = scan(tmp_path, {"examples/demo.py": (
            "import repro.frame.program\n"
        )})
        assert rules_found(result) == ["API001"]

    def test_cli_deep_import_flagged(self, tmp_path):
        result = scan(tmp_path, {
            "repro/__init__.py": "",
            "repro/cli.py": "from repro.core import SymPhaseSimulator\n",
        })
        assert rules_found(result) == ["API001"]

    def test_sanctioned_facades_clean(self, tmp_path):
        result = scan(tmp_path, {"examples/demo.py": (
            "from repro.study import Sweep\n"
            "from repro.qec import surface_code_memory\n"
            "import repro.obs as obs\n"
            "from repro.rng import as_generator\n"
        )})
        assert result.findings == []

    def test_internal_module_not_in_scope(self, tmp_path):
        result = scan(tmp_path, {
            "repro/__init__.py": "",
            "repro/engine_helper.py": "from repro.frame import program\n",
        })
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"benchmarks/bench_x.py": (
            "from repro.engine.shm import SlabArena  # repro: ignore[API001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["API001"]


class TestEXC001:
    ENGINE = {
        "repro/__init__.py": "",
        "repro/engine/__init__.py": "",
    }

    def test_except_pass_in_engine_flagged(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/pool.py": (
            "def reap(conn):\n"
            "    try:\n"
            "        conn.close()\n"
            "    except OSError:\n"
            "        pass\n"
        )})
        assert rules_found(result) == ["EXC001"]
        assert "OSError" in result.findings[0].message
        assert "suppress" in result.findings[0].hint

    def test_bare_except_without_reraise_flagged(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/loopy.py": (
            "def drain(queue):\n"
            "    try:\n"
            "        return queue.get()\n"
            "    except:\n"
            "        return None\n"
        )})
        assert rules_found(result) == ["EXC001"]
        assert "bare except" in result.findings[0].message

    def test_bare_except_with_reraise_clean(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/clean.py": (
            "def guarded(conn):\n"
            "    try:\n"
            "        return conn.recv()\n"
            "    except:\n"
            "        conn.close()\n"
            "        raise\n"
        )})
        assert result.findings == []

    def test_contextlib_suppress_clean(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/ok.py": (
            "import contextlib\n"
            "def reap(conn):\n"
            "    with contextlib.suppress(OSError):\n"
            "        conn.close()\n"
        )})
        assert result.findings == []

    def test_handler_with_real_work_clean(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/retry.py": (
            "def attempt(chunk, requeue):\n"
            "    try:\n"
            "        return chunk.run()\n"
            "    except RuntimeError as exc:\n"
            "        requeue(chunk, str(exc))\n"
        )})
        assert result.findings == []

    def test_non_engine_module_not_in_scope(self, tmp_path):
        result = scan(tmp_path, {
            "repro/__init__.py": "",
            "repro/util.py": (
                "def probe(path):\n"
                "    try:\n"
                "        return open(path).read()\n"
                "    except OSError:\n"
                "        pass\n"
            ),
        })
        assert "EXC001" not in rules_found(result)

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {**self.ENGINE, "repro/engine/old.py": (
            "def reap(conn):\n"
            "    try:\n"
            "        conn.close()\n"
            "    except OSError:  # repro: ignore[EXC001]\n"
            "        pass\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["EXC001"]
