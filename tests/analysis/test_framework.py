"""Framework plumbing: suppressions, baselines, reporters, CLI."""

import json

import pytest

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    AnalysisResult,
    Baseline,
    Finding,
    all_rules,
    analyze,
    render_github,
    render_json,
    render_text,
    rule_ids,
    select_rules,
)
from repro.analysis.__main__ import main
from repro.analysis.core import is_suppressed, sort_findings, suppressed_rules

VIOLATION = (
    "import numpy as np\n"
    "def roll():\n"
    "    return np.random.randint(10)\n"
)


def write_violation(tmp_path, rel="roll.py", text=VIOLATION):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestRuleRegistry:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_ids_unique_and_metadata_complete(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert len(set(ids)) == len(ids)
        for rule in rules:
            assert rule.severity in ("error", "warning")
            assert rule.title
            assert rule.rationale

    def test_expected_rule_set(self):
        assert set(rule_ids()) >= {
            "RNG001", "RNG002", "FORK001", "SHM001",
            "PACK001", "REG001", "OBS001", "API001",
            "PARSE000", "SEED001", "PACK002", "RES001", "WIRE001",
        }

    def test_select_and_ignore(self):
        assert [r.id for r in select_rules(select=("RNG001",))] == ["RNG001"]
        assert "API001" not in {
            r.id for r in select_rules(ignore=("API001",))
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="NOPE999"):
            select_rules(select=("NOPE999",))
        with pytest.raises(ValueError, match="NOPE999"):
            select_rules(ignore=("NOPE999",))


class TestSuppressionParsing:
    def test_single_id(self):
        assert suppressed_rules("x = 1  # repro: ignore[RNG001]") == {
            "RNG001"
        }

    def test_comma_list(self):
        assert suppressed_rules(
            "x = 1  # repro: ignore[RNG001, PACK001]"
        ) == {"RNG001", "PACK001"}

    def test_wildcard(self):
        line = "x = 1  # repro: ignore[*]"
        assert suppressed_rules(line) == {"*"}
        finding = Finding("SHM001", "error", "f.py", 1, "m")
        assert is_suppressed(finding, [line])

    def test_plain_comment_is_not_a_suppression(self):
        assert suppressed_rules("x = 1  # ignore this") == frozenset()

    def test_wrong_rule_does_not_suppress(self):
        finding = Finding("SHM001", "error", "f.py", 1, "m")
        assert not is_suppressed(finding, ["x  # repro: ignore[RNG001]"])

    def test_line_out_of_range(self):
        finding = Finding("SHM001", "error", "f.py", 99, "m")
        assert not is_suppressed(finding, ["x  # repro: ignore[*]"])


class TestBaseline:
    def entry(self, **overrides):
        entry = {
            "rule": "RNG001",
            "path": "roll.py",
            "note": "legacy roll, tracked in #12",
        }
        entry.update(overrides)
        return entry

    def finding(self, **overrides):
        fields = dict(
            rule="RNG001", severity="error", path="roll.py", line=3,
            message="np.random.randint used", symbol="roll",
        )
        fields.update(overrides)
        return Finding(**fields)

    def test_match_on_rule_and_path(self):
        baseline = Baseline(entries=[self.entry()])
        assert baseline.matches(self.finding())
        assert not baseline.matches(self.finding(path="other.py"))
        assert not baseline.matches(self.finding(rule="SHM001"))
        assert baseline.stale_entries() == []

    def test_symbol_and_contains_narrow_the_match(self):
        baseline = Baseline(
            entries=[self.entry(symbol="roll", contains="randint")]
        )
        assert baseline.matches(self.finding())
        assert not baseline.matches(self.finding(symbol="other"))
        assert not baseline.matches(self.finding(message="random.choice"))

    def test_stale_entries_reported(self):
        baseline = Baseline(entries=[self.entry(path="deleted.py")])
        assert not baseline.matches(self.finding())
        assert baseline.stale_entries() == [self.entry(path="deleted.py")]

    def test_load_validates_required_keys(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"entries": [self.entry()]}))
        assert Baseline.load(good).entries == [self.entry()]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"entries": [{"rule": "RNG001"}]}))
        with pytest.raises(ValueError, match="missing"):
            Baseline.load(bad)

    def test_analyze_partitions_baselined(self, tmp_path):
        write_violation(tmp_path)
        baseline = Baseline(entries=[self.entry()])
        result = analyze(
            [tmp_path / "roll.py"], root=tmp_path,
            include_context=False, baseline=baseline,
        )
        assert result.findings == []
        assert [f.rule for f in result.baselined] == ["RNG001"]
        assert result.exit_code == 0


class TestReporters:
    def run_violation(self, tmp_path):
        write_violation(tmp_path)
        return analyze(
            [tmp_path / "roll.py"], root=tmp_path, include_context=False
        )

    def test_json_schema(self, tmp_path):
        payload = json.loads(render_json(self.run_violation(tmp_path)))
        assert set(payload) == {
            "version", "rules", "findings", "suppressed", "baselined",
            "stale_baseline", "counts", "files_analyzed", "exit_code",
        }
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["exit_code"] == 1
        assert payload["counts"] == {"RNG001": 1}
        assert payload["files_analyzed"] == 1
        # No "seconds" field: the JSON report is a pure function of the
        # findings so cold and warm cache runs stay byte-identical.
        assert "seconds" not in payload
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "message", "hint", "symbol"
        }
        assert finding["rule"] == "RNG001"
        assert finding["path"] == "roll.py"
        assert finding["line"] == 3
        assert finding["symbol"] == "roll"
        for rule_id, meta in payload["rules"].items():
            assert set(meta) == {"severity", "title", "rationale"}
            assert rule_id in payload["rules"]

    def test_github_annotations(self, tmp_path):
        text = render_github(self.run_violation(tmp_path))
        lines = text.splitlines()
        assert lines[0].startswith("::error ")
        assert "file=roll.py" in lines[0]
        assert "line=3" in lines[0]
        assert "title=RNG001" in lines[0]
        assert "::" in lines[0].split("title=RNG001", 1)[1]
        assert lines[-1] == "1 finding(s) in 1 file(s), 14 rule(s)"

    def test_github_annotation_escaping(self):
        finding = Finding(
            "RNG001", "warning", "a,b.py", 7,
            "bad: 100% broken\nreally",
        )
        result = AnalysisResult(
            findings=[finding], files_analyzed=1, rules_run=("RNG001",),
        )
        (annotation, _summary) = render_github(result).splitlines()
        assert annotation.startswith("::warning file=a%2Cb.py,line=7,")
        assert "100%25 broken%0Areally" in annotation

    def test_text_report(self, tmp_path):
        text = render_text(self.run_violation(tmp_path))
        assert "roll.py:3: RNG001 [error]" in text
        assert "1 finding(s)" in text

    def test_clean_text_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = analyze(
            [tmp_path / "ok.py"], root=tmp_path, include_context=False
        )
        assert "clean" in render_text(result)

    def test_sort_findings_orders_by_path_line_rule(self):
        unordered = [
            Finding("RNG001", "error", "b.py", 2, "m"),
            Finding("SHM001", "error", "a.py", 9, "m"),
            Finding("API001", "warning", "a.py", 9, "m"),
            Finding("RNG001", "error", "a.py", 1, "m"),
        ]
        ordered = sort_findings(unordered)
        assert [(f.path, f.line, f.rule) for f in ordered] == [
            ("a.py", 1, "RNG001"), ("a.py", 9, "API001"),
            ("a.py", 9, "SHM001"), ("b.py", 2, "RNG001"),
        ]


class TestCli:
    @pytest.fixture
    def violation_dir(self, tmp_path, monkeypatch):
        write_violation(tmp_path)
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_exit_1_on_finding(self, violation_dir, capsys):
        assert main(["roll.py", "--no-context"]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_exit_0_on_clean_tree(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["ok.py", "--no-context"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_parses(self, violation_dir, capsys):
        assert main(["roll.py", "--no-context", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1

    def test_select_and_ignore_flags(self, violation_dir, capsys):
        assert main(
            ["roll.py", "--no-context", "--select", "API001"]
        ) == 0
        assert main(
            ["roll.py", "--no-context", "--ignore", "RNG001,RNG002"]
        ) == 0
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, violation_dir, capsys):
        assert main(["roll.py", "--no-context", "--select", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, violation_dir, capsys):
        assert main(
            ["roll.py", "--no-context", "--baseline", "absent.json"]
        ) == 2
        assert "baseline" in capsys.readouterr().err

    def test_baseline_gates_exit_code(self, violation_dir, capsys):
        (violation_dir / "baseline.json").write_text(json.dumps({
            "entries": [{
                "rule": "RNG001", "path": "roll.py",
                "note": "fixture violation",
            }]
        }))
        assert main(
            ["roll.py", "--no-context", "--baseline", "baseline.json"]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out
