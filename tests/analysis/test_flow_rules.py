"""Dataflow-rule fixtures: SEED001, PACK002, RES001, WIRE001.

Same shape as ``test_rules.py`` — self-contained snippet trees under
``tmp_path`` — but exercising the flow-sensitive machinery: branch
joins, interprocedural summaries, exception-path precision.
"""

from repro.analysis import analyze


def scan(tmp_path, files, **kwargs):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return analyze(
        [tmp_path / rel for rel in files],
        root=tmp_path,
        include_context=False,
        **kwargs,
    )


def rules_found(result):
    return sorted({f.rule for f in result.findings})


class TestSEED001:
    def test_wall_clock_into_hash_flagged(self, tmp_path):
        result = scan(tmp_path, {"ident.py": (
            "import hashlib\n"
            "import time\n"
            "def fingerprint(task):\n"
            "    stamp = time.time()\n"
            "    payload = f'{task}-{stamp}'\n"
            "    return hashlib.sha256(payload.encode()).hexdigest()\n"
        )})
        assert rules_found(result) == ["SEED001"]
        assert "hashlib.sha256" in result.findings[0].message

    def test_taint_through_helper_summary_flagged(self, tmp_path):
        result = scan(tmp_path, {"ident.py": (
            "import time\n"
            "def _stamp():\n"
            "    return time.time()\n"
            "def identify(task):\n"
            "    salt = _stamp()\n"
            "    return task.strong_id(salt)\n"
        )})
        assert rules_found(result) == ["SEED001"]
        assert "strong_id" in result.findings[0].message

    def test_set_iteration_order_flagged(self, tmp_path):
        result = scan(tmp_path, {"ident.py": (
            "def fingerprint(items):\n"
            "    names = {item.name for item in items}\n"
            "    return circuit_fingerprint(list(names))\n"
        )})
        assert rules_found(result) == ["SEED001"]

    def test_sorted_sanitizes_set_order(self, tmp_path):
        result = scan(tmp_path, {"ident.py": (
            "def fingerprint(items):\n"
            "    names = {item.name for item in items}\n"
            "    return circuit_fingerprint(sorted(names))\n"
        )})
        assert result.findings == []

    def test_unseeded_default_rng_flagged_seeded_clean(self, tmp_path):
        result = scan(tmp_path, {"seeds.py": (
            "import numpy as np\n"
            "def fresh():\n"
            "    noise = np.random.default_rng().integers(2**32)\n"
            "    return chunk_seed_sequence(noise)\n"
            "def derived(base_seed):\n"
            "    rng = np.random.default_rng(base_seed)\n"
            "    return chunk_seed_sequence(rng.integers(2**32))\n"
        )})
        assert rules_found(result) == ["SEED001"]
        assert all("fresh()" in f.message for f in result.findings)

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"ident.py": (
            "import time\n"
            "def identify(task):\n"
            "    salt = time.time()\n"
            "    return task.strong_id(salt)  # repro: ignore[SEED001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["SEED001"]


class TestPACK002Flow:
    def test_taint_through_helper_summary_flagged(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def _fetch(sampler, shots):\n"
            "    return sampler.sample_detectors(shots)\n"
            "def run(sampler, shots):\n"
            "    rows = _fetch(sampler, shots)\n"
            "    return popcount_rows(rows)\n"
        )})
        assert rules_found(result) == ["PACK002"]
        assert "run()" in result.findings[0].message

    def test_cross_module_summary_flagged(self, tmp_path):
        result = scan(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/fetch.py": (
                "def fetch(sampler, shots):\n"
                "    return sampler.sample_detectors(shots)\n"
            ),
            "pkg/count.py": (
                "from pkg.fetch import fetch\n"
                "def run(sampler, shots):\n"
                "    return popcount_rows(fetch(sampler, shots))\n"
            ),
        })
        assert rules_found(result) == ["PACK002"]

    def test_mark_survives_branch_join(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "def run(sampler, shots, flag):\n"
            "    if flag:\n"
            "        rows = sampler.sample_detectors(shots)\n"
            "    else:\n"
            "        rows = transform(shots)\n"
            "    return popcount_rows(rows)\n"
        )})
        assert rules_found(result) == ["PACK002"]

    def test_conversion_on_every_path_clean(self, tmp_path):
        result = scan(tmp_path, {"mix.py": (
            "from repro.gf2.bitops import pack_rows\n"
            "def run(sampler, shots, flag):\n"
            "    if flag:\n"
            "        rows = pack_rows(sampler.sample_detectors(shots))\n"
            "    else:\n"
            "        rows = sampler.sample_detectors_packed(shots)\n"
            "    return popcount_rows(rows)\n"
        )})
        assert result.findings == []


class TestRES001:
    def test_early_return_leak_flagged(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def probe(size, limit):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    if size > limit:\n"
            "        return False\n"
            "    seg.close()\n"
            "    seg.unlink()\n"
            "    return True\n"
        )})
        assert "RES001" in rules_found(result)
        assert "'seg'" in result.findings[0].message

    def test_with_block_clean(self, tmp_path):
        result = scan(tmp_path, {"io.py": (
            "def read(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )})
        assert result.findings == []

    def test_release_on_all_paths_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def probe(size):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    try:\n"
            "        return seg.size\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )})
        assert "RES001" not in rules_found(result)

    def test_acquire_inside_try_exception_path_clean(self, tmp_path):
        # The exception edge into the handler must carry the *any
        # point* join of the try body — the acquisition may not have
        # happened yet, so the handler path holds no obligation.
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def available(size):\n"
            "    try:\n"
            "        seg = SharedMemory(create=True, size=size)\n"
            "    except OSError:\n"
            "        return False\n"
            "    seg.close()\n"
            "    seg.unlink()\n"
            "    return True\n"
        )})
        assert "RES001" not in rules_found(result)

    def test_ownership_escape_by_return_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def grab(size):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    return seg\n"
        )})
        assert "RES001" not in rules_found(result)

    def test_ownership_escape_by_store_clean(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "class Arena:\n"
            "    def grow(self, size):\n"
            "        seg = SharedMemory(create=True, size=size)\n"
            "        self.segments[seg.name] = seg\n"
            "        return seg.name\n"
        )})
        assert "RES001" not in rules_found(result)

    def test_alias_move_keeps_single_obligation(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def grab(size):\n"
            "    seg = SharedMemory(create=True, size=size)\n"
            "    handle = seg\n"
            "    handle.close()\n"
            "    handle.unlink()\n"
        )})
        assert "RES001" not in rules_found(result)

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"seg.py": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def grab(size, limit):\n"
            "    seg = SharedMemory(create=True, size=size)  "
            "# repro: ignore[RES001, SHM001]\n"
            "    if size > limit:\n"
            "        return False\n"
            "    seg.close()\n"
            "    seg.unlink()\n"
            "    return True\n"
        )})
        assert result.findings == []
        assert sorted(f.rule for f in result.suppressed) == ["RES001"]


class TestWIRE001:
    def test_lambda_into_spec_flagged(self, tmp_path):
        result = scan(tmp_path, {"dispatch.py": (
            "def make(chunk_id):\n"
            "    task = lambda x: x + 1\n"
            "    return ChunkSpec(task=task, chunk_id=chunk_id)\n"
        )})
        assert rules_found(result) == ["WIRE001"]
        assert "'task'" in result.findings[0].message
        assert "closure" in result.findings[0].message

    def test_live_array_into_spec_flagged(self, tmp_path):
        result = scan(tmp_path, {"dispatch.py": (
            "import numpy as np\n"
            "def make(chunk_id, n):\n"
            "    buf = np.zeros(n)\n"
            "    return ShmChunkSpec(payload=buf, chunk_id=chunk_id)\n"
        )})
        assert rules_found(result) == ["WIRE001"]
        assert "ndarray" in result.findings[0].message

    def test_lock_into_spec_flagged(self, tmp_path):
        result = scan(tmp_path, {"dispatch.py": (
            "from threading import Lock\n"
            "def make(chunk_id):\n"
            "    guard = Lock()\n"
            "    return ChunkSpec(guard=guard, chunk_id=chunk_id)\n"
        )})
        assert rules_found(result) == ["WIRE001"]

    def test_header_only_spec_clean(self, tmp_path):
        result = scan(tmp_path, {"dispatch.py": (
            "def make(blob_name, chunk_id, shots):\n"
            "    return ChunkSpec(\n"
            "        circuit_ref=blob_name,\n"
            "        chunk_id=chunk_id,\n"
            "        shots=shots,\n"
            "    )\n"
        )})
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = scan(tmp_path, {"dispatch.py": (
            "def make(chunk_id):\n"
            "    task = lambda x: x + 1\n"
            "    return ChunkSpec(task=task, chunk_id=chunk_id)  "
            "# repro: ignore[WIRE001]\n"
        )})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["WIRE001"]
