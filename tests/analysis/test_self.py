"""The analyzer run against this repository itself.

These are the gating properties CI relies on: the real ``src/repro``
tree is clean with no inline suppressions, the examples/benchmarks
findings are all accounted for by the checked-in baseline, and the
whole run stays fast.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSrcTreeIsClean:
    def test_no_findings_no_suppressions(self):
        result = analyze([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert result.findings == [], [
            f"{f.location()}: {f.rule} {f.message}" for f in result.findings
        ]
        # Zero inline suppressions in src: every accepted violation must
        # live in the baseline file, where it carries a note.
        assert result.suppressed == []
        assert result.exit_code == 0

    def test_full_rule_set_runs_fast(self):
        result = analyze([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert len(result.rules_run) >= 8
        assert result.files_analyzed >= 50
        assert result.seconds < 10.0


class TestBaselinedTrees:
    def test_examples_and_benchmarks_match_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        result = analyze(
            [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
            baseline=baseline,
        )
        assert result.findings == [], [
            f"{f.location()}: {f.rule} {f.message}" for f in result.findings
        ]
        assert result.suppressed == []
        assert result.baselined, "baseline should be exercised"

    def test_baseline_has_no_stale_entries(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        analyze(
            [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
            baseline=baseline,
        )
        assert baseline.stale_entries() == []

    def test_every_baseline_entry_has_a_note(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        for entry in baseline.entries:
            assert entry["note"].strip()
