"""Tests for the command-line interface."""

import pytest

from repro.cli import main

CIRCUIT_TEXT = """\
H 0
CNOT 0 1
X_ERROR(0.25) 0
M 0 1
DETECTOR rec[-1] rec[-2]
OBSERVABLE_INCLUDE(0) rec[-1]
"""


@pytest.fixture()
def circuit_file(tmp_path):
    path = tmp_path / "bell.stim"
    path.write_text(CIRCUIT_TEXT)
    return str(path)


class TestSample:
    def test_symbolic_output_shape(self, circuit_file, capsys):
        assert main(["sample", circuit_file, "--shots", "7", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 7
        assert all(len(line) == 2 and set(line) <= {"0", "1"} for line in lines)

    def test_frame_simulator_option(self, circuit_file, capsys):
        assert main([
            "sample", circuit_file, "--shots", "5", "--seed", "1",
            "--simulator", "frame",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5

    def test_seed_reproducible(self, circuit_file, capsys):
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        first = capsys.readouterr().out
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        second = capsys.readouterr().out
        assert first == second


class TestDetect:
    def test_detector_output(self, circuit_file, capsys):
        assert main(["detect", circuit_file, "--shots", "4", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        # one detector bit + space + one observable bit
        assert all(len(line) == 3 for line in lines)


class TestAnalyze:
    def test_expressions_printed(self, circuit_file, capsys):
        assert main(["analyze", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "m0 =" in out
        assert "m1 =" in out
        assert "symbols" in out


class TestStats:
    def test_counts_printed(self, circuit_file, capsys):
        assert main(["stats", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "qubits:        2" in out
        assert "measurements:  2" in out
        assert "detectors:     1" in out


class TestDecoders:
    def test_lists_registered_decoders_with_flags(self, capsys):
        assert main(["decoders"]) == 0
        out = capsys.readouterr().out
        assert "compiled-matching" in out
        assert "matching" in out
        assert "lookup" in out
        assert "batched" in out
        assert "exact" in out


class TestDecode:
    def test_decode_reports_rate(self, circuit_file, capsys):
        assert main([
            "decode", circuit_file, "--shots", "400",
            "--decoder", "compiled-matching", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "logical err rate" in out
        assert "shots:            400" in out
        assert "decoder:          compiled-matching" in out

    def test_decode_alias_resolves(self, circuit_file, capsys):
        assert main([
            "decode", circuit_file, "--shots", "200", "--decoder", "mwpm",
        ]) == 0
        assert "decoder:          matching" in capsys.readouterr().out

    def test_decode_counts_independent_of_workers(self, circuit_file, capsys):
        args = ["decode", circuit_file, "--shots", "600",
                "--chunk-shots", "200", "--seed", "5"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(("shots", "logical errors"))
        ]
        assert pick(serial) == pick(pooled)

    def test_decoder_matching_and_compiled_agree(self, circuit_file, capsys):
        outputs = []
        for decoder in ("matching", "compiled-matching"):
            assert main([
                "decode", circuit_file, "--shots", "500",
                "--decoder", decoder, "--seed", "3",
            ]) == 0
            outputs.append([
                line for line in capsys.readouterr().out.splitlines()
                if line.startswith("logical errors")
            ])
        assert outputs[0] == outputs[1]


class TestCollect:
    ARGS = [
        "collect", "--code", "repetition", "--distances", "3",
        "--probabilities", "0.05", "--rounds", "2",
        "--max-shots", "600", "--chunk-shots", "300", "--seed", "3",
    ]

    def test_sweep_prints_rates(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "collecting 1 task(s)" in out
        assert "repetition" in out
        assert "600" in out

    def test_store_written_and_resumed(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(self.ARGS + ["--out", store]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--out", store]) == 0
        second = capsys.readouterr().out
        assert not first.rstrip().endswith("resumed")
        assert second.rstrip().endswith("resumed")
        assert len((tmp_path / "results.jsonl").read_text().splitlines()) == 1

    def test_workers_match_serial_counts(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.jsonl")
        pooled = str(tmp_path / "pooled.jsonl")
        assert main(self.ARGS + ["--out", serial]) == 0
        assert main(self.ARGS + ["--workers", "2", "--out", pooled]) == 0
        capsys.readouterr()
        import json

        row_a = json.loads((tmp_path / "serial.jsonl").read_text())
        row_b = json.loads((tmp_path / "pooled.jsonl").read_text())
        assert (row_a["shots"], row_a["errors"]) == (
            row_b["shots"], row_b["errors"]
        )
