"""Tests for the command-line interface."""

import pytest

from repro.cli import main

CIRCUIT_TEXT = """\
H 0
CNOT 0 1
X_ERROR(0.25) 0
M 0 1
DETECTOR rec[-1] rec[-2]
OBSERVABLE_INCLUDE(0) rec[-1]
"""


@pytest.fixture()
def circuit_file(tmp_path):
    path = tmp_path / "bell.stim"
    path.write_text(CIRCUIT_TEXT)
    return str(path)


class TestSample:
    def test_symbolic_output_shape(self, circuit_file, capsys):
        assert main(["sample", circuit_file, "--shots", "7", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 7
        assert all(len(line) == 2 and set(line) <= {"0", "1"} for line in lines)

    def test_frame_simulator_option(self, circuit_file, capsys):
        assert main([
            "sample", circuit_file, "--shots", "5", "--seed", "1",
            "--simulator", "frame",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5

    def test_seed_reproducible(self, circuit_file, capsys):
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        first = capsys.readouterr().out
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        second = capsys.readouterr().out
        assert first == second


class TestDetect:
    def test_detector_output(self, circuit_file, capsys):
        assert main(["detect", circuit_file, "--shots", "4", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        # one detector bit + space + one observable bit
        assert all(len(line) == 3 for line in lines)


class TestAnalyze:
    def test_expressions_printed(self, circuit_file, capsys):
        assert main(["analyze", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "m0 =" in out
        assert "m1 =" in out
        assert "symbols" in out


class TestStats:
    def test_counts_printed(self, circuit_file, capsys):
        assert main(["stats", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "qubits:        2" in out
        assert "measurements:  2" in out
        assert "detectors:     1" in out


class TestCollect:
    ARGS = [
        "collect", "--code", "repetition", "--distances", "3",
        "--probabilities", "0.05", "--rounds", "2",
        "--max-shots", "600", "--chunk-shots", "300", "--seed", "3",
    ]

    def test_sweep_prints_rates(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "collecting 1 task(s)" in out
        assert "repetition" in out
        assert "600" in out

    def test_store_written_and_resumed(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(self.ARGS + ["--out", store]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--out", store]) == 0
        second = capsys.readouterr().out
        assert not first.rstrip().endswith("resumed")
        assert second.rstrip().endswith("resumed")
        assert len((tmp_path / "results.jsonl").read_text().splitlines()) == 1

    def test_workers_match_serial_counts(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.jsonl")
        pooled = str(tmp_path / "pooled.jsonl")
        assert main(self.ARGS + ["--out", serial]) == 0
        assert main(self.ARGS + ["--workers", "2", "--out", pooled]) == 0
        capsys.readouterr()
        import json

        row_a = json.loads((tmp_path / "serial.jsonl").read_text())
        row_b = json.loads((tmp_path / "pooled.jsonl").read_text())
        assert (row_a["shots"], row_a["errors"]) == (
            row_b["shots"], row_b["errors"]
        )
