"""Tests for the command-line interface."""

import pytest

from repro.cli import main

CIRCUIT_TEXT = """\
H 0
CNOT 0 1
X_ERROR(0.25) 0
M 0 1
DETECTOR rec[-1] rec[-2]
OBSERVABLE_INCLUDE(0) rec[-1]
"""


@pytest.fixture()
def circuit_file(tmp_path):
    path = tmp_path / "bell.stim"
    path.write_text(CIRCUIT_TEXT)
    return str(path)


class TestSample:
    def test_symbolic_output_shape(self, circuit_file, capsys):
        assert main(["sample", circuit_file, "--shots", "7", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 7
        assert all(len(line) == 2 and set(line) <= {"0", "1"} for line in lines)

    def test_frame_backend_option(self, circuit_file, capsys):
        assert main([
            "sample", circuit_file, "--shots", "5", "--seed", "1",
            "--backend", "frame",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5

    def test_seed_reproducible(self, circuit_file, capsys):
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        first = capsys.readouterr().out
        main(["sample", circuit_file, "--shots", "20", "--seed", "42"])
        second = capsys.readouterr().out
        assert first == second


class TestSeedAndAliasHelpers:
    def test_seed_defaults_to_fresh_entropy(self, circuit_file, capsys):
        """No --seed => fresh OS entropy: two runs disagree (50 coin-flip
        rows agreeing by chance is a 2^-50 event)."""
        assert main(["sample", circuit_file, "--shots", "50"]) == 0
        first = capsys.readouterr().out
        assert main(["sample", circuit_file, "--shots", "50"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_shared_seed_helper_defaults_to_none(self):
        """`repro decode` used to hard-code --seed 0; every command now
        routes through one shared helper whose default is None."""
        import argparse

        from repro.cli import add_seed_argument

        parser = argparse.ArgumentParser()
        add_seed_argument(parser)
        assert parser.parse_args([]).seed is None
        assert parser.parse_args(["--seed", "3"]).seed == 3

    @pytest.mark.parametrize("flag", ["--simulator", "--sampler"])
    def test_legacy_backend_spellings_warn(self, circuit_file, capsys, flag):
        with pytest.deprecated_call():
            assert main([
                "sample", circuit_file, "--shots", "3", "--seed", "0",
                flag, "frame",
            ]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_canonical_backend_flag_does_not_warn(self, circuit_file, capsys):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main([
                "sample", circuit_file, "--shots", "3", "--seed", "0",
                "--backend", "frame",
            ]) == 0

    def test_build_sweep_tasks_shim_warns_and_delegates(self):
        import argparse

        from repro.cli import build_sweep_tasks

        namespace = argparse.Namespace(
            code="repetition", distances="3", probabilities="0.05",
            rounds=2, decoder="compiled-matching", backend="symbolic",
            max_shots=100, max_errors=None,
        )
        with pytest.deprecated_call():
            tasks = build_sweep_tasks(namespace)
        assert len(tasks) == 1
        assert tasks[0].metadata["code"] == "repetition"


class TestDetect:
    def test_detector_output(self, circuit_file, capsys):
        assert main(["detect", circuit_file, "--shots", "4", "--seed", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        # one detector bit + space + one observable bit
        assert all(len(line) == 3 for line in lines)


class TestAnalyze:
    def test_expressions_printed(self, circuit_file, capsys):
        assert main(["analyze", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "m0 =" in out
        assert "m1 =" in out
        assert "symbols" in out


class TestStats:
    def test_counts_printed(self, circuit_file, capsys):
        assert main(["stats", circuit_file]) == 0
        out = capsys.readouterr().out
        assert "qubits:        2" in out
        assert "measurements:  2" in out
        assert "detectors:     1" in out


class TestDecoders:
    def test_lists_registered_decoders_with_flags(self, capsys):
        assert main(["decoders"]) == 0
        out = capsys.readouterr().out
        assert "compiled-matching" in out
        assert "matching" in out
        assert "lookup" in out
        assert "batched" in out
        assert "exact" in out


class TestDecode:
    def test_decode_reports_rate(self, circuit_file, capsys):
        assert main([
            "decode", circuit_file, "--shots", "400",
            "--decoder", "compiled-matching", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "logical err rate" in out
        assert "shots:            400" in out
        assert "decoder:          compiled-matching" in out

    def test_decode_alias_resolves(self, circuit_file, capsys):
        assert main([
            "decode", circuit_file, "--shots", "200", "--decoder", "mwpm",
        ]) == 0
        assert "decoder:          matching" in capsys.readouterr().out

    def test_decode_counts_independent_of_workers(self, circuit_file, capsys):
        args = ["decode", circuit_file, "--shots", "600",
                "--chunk-shots", "200", "--seed", "5"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(("shots", "logical errors"))
        ]
        assert pick(serial) == pick(pooled)

    def test_decoder_matching_and_compiled_agree(self, circuit_file, capsys):
        outputs = []
        for decoder in ("matching", "compiled-matching"):
            assert main([
                "decode", circuit_file, "--shots", "500",
                "--decoder", decoder, "--seed", "3",
            ]) == 0
            outputs.append([
                line for line in capsys.readouterr().out.splitlines()
                if line.startswith("logical errors")
            ])
        assert outputs[0] == outputs[1]


class TestCollect:
    ARGS = [
        "collect", "--code", "repetition", "--distances", "3",
        "--probabilities", "0.05", "--rounds", "2",
        "--max-shots", "600", "--chunk-shots", "300", "--seed", "3",
    ]

    def test_sweep_prints_rates(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "collecting 1 task(s)" in out
        assert "repetition" in out
        assert "600" in out

    def test_profile_prints_stage_breakdown(self, capsys):
        assert main(self.ARGS + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (1 task(s), 600 shots" in out
        for stage in ("sample", "decode", "setup/agg", "pool overhead"):
            assert stage in out, stage

    def test_profile_notes_fully_resumed_runs(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        assert main(self.ARGS + ["--out", store]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", store, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "every task resumed" in out

    def test_store_written_and_resumed(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(self.ARGS + ["--out", store]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--out", store]) == 0
        second = capsys.readouterr().out
        assert not first.rstrip().endswith("resumed")
        assert second.rstrip().endswith("resumed")
        assert len((tmp_path / "results.jsonl").read_text().splitlines()) == 1

    def test_profile_prints_per_worker_table(self, capsys):
        assert main(self.ARGS + ["--profile", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-worker:" in out
        assert "compile" in out and "shots/s" in out
        assert "queue wait" in out
        assert "transport" in out
        # Two pool workers each get a row (the parent pid does not).
        import os
        table = out.split("per-worker:")[1].strip().splitlines()
        pids = {line.split()[0] for line in table[1:]}
        assert len(pids) == 2
        assert str(os.getpid()) not in pids

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        from repro.obs.schema import validate_trace_file

        trace = str(tmp_path / "trace.json")
        assert main(self.ARGS + ["--trace", trace]) == 0
        assert validate_trace_file(trace) > 0
        import json

        doc = json.loads((tmp_path / "trace.json").read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"task", "chunk", "sample", "decode"} <= names

    def test_trace_jsonl_extension_writes_span_lines(self, tmp_path, capsys):
        from repro.obs.schema import validate_trace_file

        trace = str(tmp_path / "spans.jsonl")
        assert main(self.ARGS + ["--trace", trace]) == 0
        assert validate_trace_file(trace) > 0

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.prom")
        assert main(self.ARGS + ["--metrics-out", metrics]) == 0
        text = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE repro_shots_total counter" in text
        assert "repro_shots_total" in text

    def test_obs_state_restored_after_run(self, tmp_path, capsys):
        import repro.obs as obs

        trace = str(tmp_path / "trace.json")
        assert main(self.ARGS + ["--trace", trace, "--profile"]) == 0
        assert not obs.is_tracing() and not obs.is_metrics()
        assert obs.drain_spans() == []

    def test_workers_match_serial_counts(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.jsonl")
        pooled = str(tmp_path / "pooled.jsonl")
        assert main(self.ARGS + ["--out", serial]) == 0
        assert main(self.ARGS + ["--workers", "2", "--out", pooled]) == 0
        capsys.readouterr()
        import json

        row_a = json.loads((tmp_path / "serial.jsonl").read_text())
        row_b = json.loads((tmp_path / "pooled.jsonl").read_text())
        assert (row_a["shots"], row_a["errors"]) == (
            row_b["shots"], row_b["errors"]
        )
