"""X-basis surface-code memory: the dual experiment must decode too."""

import numpy as np
import pytest

from repro.core import compile_sampler
from repro.decoders import MatchingDecoder, logical_error_rate
from repro.dem import extract_dem
from repro.qec import surface_code_memory


@pytest.fixture(scope="module")
def x_memory():
    return surface_code_memory(
        3, rounds=3,
        after_clifford_depolarization=0.003,
        before_measure_flip_probability=0.003,
        basis="X",
    )


class TestXBasisMemory:
    def test_detectors_fire_under_noise(self, x_memory):
        det, _ = compile_sampler(x_memory).sample_detectors(
            2000, np.random.default_rng(0)
        )
        assert 0.001 < det.mean() < 0.2

    def test_dem_extracts(self, x_memory):
        dem = extract_dem(x_memory)
        assert dem.n_observables == 1
        assert len(dem.mechanisms) > 100

    def test_mwpm_decodes_better_than_raw(self, x_memory):
        decoder = MatchingDecoder(extract_dem(x_memory))
        decoded = logical_error_rate(
            x_memory, decoder, 1500, np.random.default_rng(1)
        )
        _, obs = compile_sampler(x_memory).sample_detectors(
            1500, np.random.default_rng(1)
        )
        raw = obs.any(axis=1).mean()
        assert decoded <= raw
        assert decoded < 0.05

    def test_z_and_x_memories_have_same_structure(self, x_memory):
        z_memory = surface_code_memory(
            3, rounds=3,
            after_clifford_depolarization=0.003,
            before_measure_flip_probability=0.003,
            basis="Z",
        )
        assert z_memory.num_detectors == x_memory.num_detectors
        assert z_memory.num_measurements == x_memory.num_measurements
