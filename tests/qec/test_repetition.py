"""Tests for the repetition-code memory generator."""

import numpy as np
import pytest

from repro.core import compile_sampler
from repro.frame import FrameSimulator
from repro.qec import repetition_code_memory


class TestStructure:
    def test_qubit_count(self):
        c = repetition_code_memory(5, 3)
        assert c.n_qubits == 9  # 5 data + 4 ancilla

    def test_measurement_count(self):
        c = repetition_code_memory(3, 4)
        assert c.num_measurements == 4 * 2 + 3

    def test_detector_count(self):
        c = repetition_code_memory(3, 4)
        # 2 per round + 2 boundary
        assert c.num_detectors == 4 * 2 + 2

    def test_one_observable(self):
        assert repetition_code_memory(3, 2).num_observables == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            repetition_code_memory(1, 3)
        with pytest.raises(ValueError):
            repetition_code_memory(3, 0)


class TestNoiselessDeterminism:
    @pytest.mark.parametrize("distance,rounds", [(2, 1), (3, 3), (5, 2), (7, 4)])
    def test_all_detectors_silent(self, distance, rounds):
        c = repetition_code_memory(distance, rounds)
        det, obs = compile_sampler(c).sample_detectors(
            100, np.random.default_rng(0)
        )
        assert not det.any()
        assert not obs.any()


class TestNoisyBehavior:
    def test_detector_rate_tracks_noise(self):
        quiet = repetition_code_memory(3, 3, data_flip_probability=0.01)
        loud = repetition_code_memory(3, 3, data_flip_probability=0.1)
        rng = np.random.default_rng(0)
        det_q, _ = compile_sampler(quiet).sample_detectors(4000, rng)
        det_l, _ = compile_sampler(loud).sample_detectors(4000, rng)
        assert det_q.mean() < det_l.mean()

    def test_symbolic_and_frame_agree_on_rates(self):
        c = repetition_code_memory(
            3, 3, data_flip_probability=0.05, measure_flip_probability=0.05
        )
        det_s, obs_s = compile_sampler(c).sample_detectors(
            20000, np.random.default_rng(1)
        )
        det_f, obs_f = FrameSimulator(c).sample_detectors(
            20000, np.random.default_rng(2)
        )
        assert np.allclose(det_s.mean(axis=0), det_f.mean(axis=0), atol=0.015)
        assert abs(obs_s.mean() - obs_f.mean()) < 0.015

    def test_majority_vote_decoding_beats_raw(self):
        """Decoding the final data measurements by majority vote must beat
        the raw single-qubit readout, demonstrating the code works."""
        p = 0.08
        c = repetition_code_memory(5, 1, data_flip_probability=p)
        records = compile_sampler(c).sample(30000, np.random.default_rng(3))
        data = records[:, -5:]
        majority = (data.sum(axis=1) > 2).astype(np.uint8)
        raw_error = data[:, 0].mean()
        decoded_error = majority.mean()
        assert decoded_error < raw_error
        assert decoded_error < 0.02

    def test_measure_flip_probability_only_hits_detectors(self):
        # Pure measurement noise never corrupts the data observable.
        c = repetition_code_memory(3, 4, measure_flip_probability=0.2)
        det, obs = compile_sampler(c).sample_detectors(
            5000, np.random.default_rng(4)
        )
        assert det.any()
        assert not obs.any()
