"""Tests for the rotated surface-code generator."""

import numpy as np
import pytest

from repro.core import compile_sampler
from repro.frame import FrameSimulator
from repro.qec import surface_code_memory
from repro.qec.surface import _build_layout


class TestLayout:
    @pytest.mark.parametrize("d", [2, 3, 5, 7])
    def test_ancilla_count(self, d):
        _, x_anc, z_anc = _build_layout(d)
        assert len(x_anc) + len(z_anc) == d * d - 1

    @pytest.mark.parametrize("d", [3, 5])
    def test_balanced_types(self, d):
        _, x_anc, z_anc = _build_layout(d)
        assert len(x_anc) == len(z_anc) == (d * d - 1) // 2

    def test_data_count(self):
        data, _, _ = _build_layout(3)
        assert len(data) == 9

    def test_qubit_total(self):
        c = surface_code_memory(3, 1)
        assert c.n_qubits == 17  # 9 data + 8 ancilla


class TestNoiselessDeterminism:
    @pytest.mark.parametrize("d,rounds,basis", [
        (2, 1, "Z"), (2, 2, "X"),
        (3, 1, "Z"), (3, 3, "Z"), (3, 2, "X"),
        (5, 2, "Z"), (5, 2, "X"),
    ])
    def test_detectors_and_observable_silent(self, d, rounds, basis):
        c = surface_code_memory(d, rounds, basis=basis)
        det, obs = compile_sampler(c).sample_detectors(
            64, np.random.default_rng(0)
        )
        assert not det.any(), f"d={d} r={rounds} {basis}: detectors fired"
        assert not obs.any(), f"d={d} r={rounds} {basis}: observable flipped"

    def test_detector_counts(self):
        d, rounds = 3, 3
        c = surface_code_memory(d, rounds)
        n_z = (d * d - 1) // 2
        expected = n_z + (rounds - 1) * (d * d - 1) + n_z
        assert c.num_detectors == expected


class TestNoisyBehavior:
    def test_detectors_fire_with_noise(self):
        c = surface_code_memory(3, 3, after_clifford_depolarization=0.01)
        det, _ = compile_sampler(c).sample_detectors(
            2000, np.random.default_rng(1)
        )
        assert 0.001 < det.mean() < 0.2

    def test_symbolic_and_frame_agree(self):
        c = surface_code_memory(
            3, 2,
            after_clifford_depolarization=0.01,
            before_measure_flip_probability=0.01,
        )
        det_s, obs_s = compile_sampler(c).sample_detectors(
            20000, np.random.default_rng(2)
        )
        det_f, obs_f = FrameSimulator(c).sample_detectors(
            20000, np.random.default_rng(3)
        )
        assert np.allclose(det_s.mean(axis=0), det_f.mean(axis=0), atol=0.02)
        assert abs(obs_s.mean() - obs_f.mean()) < 0.02

    def test_sparse_strategy_selected(self):
        c = surface_code_memory(
            3, 3,
            after_clifford_depolarization=0.005,
            before_measure_flip_probability=0.005,
        )
        sampler = compile_sampler(c)
        assert sampler.choose_strategy() == "sparse"

    def test_measurement_noise_flips_detectors_and_final_readout(self):
        # before_measure noise hits both ancilla rounds (detectors) and the
        # final data readout (which carries the observable).
        c = surface_code_memory(3, 3, before_measure_flip_probability=0.05)
        det, obs = compile_sampler(c).sample_detectors(
            3000, np.random.default_rng(4)
        )
        assert det.any()
        # Observable is a distance-3 line of data qubits, each read with a
        # 5% flip: expect roughly 3 * 0.05 raw flip rate (first order).
        assert 0.05 < obs.mean() < 0.25


class TestValidation:
    def test_bad_distance(self):
        with pytest.raises(ValueError):
            surface_code_memory(1, 1)

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            surface_code_memory(3, 0)

    def test_bad_basis(self):
        with pytest.raises(ValueError):
            surface_code_memory(3, 1, basis="Y")
