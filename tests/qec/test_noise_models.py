"""Tests for the circuit-level noise transformer."""

from repro.circuit import Circuit
from repro.circuit.instructions import RepeatBlock
from repro.qec import NoiseModel, with_noise


class TestInsertion:
    def test_after_1q(self):
        noisy = NoiseModel(after_1q=0.01).apply(Circuit().h(0))
        names = [e.name for e in noisy.entries]
        assert names == ["H", "DEPOLARIZE1"]

    def test_after_2q(self):
        noisy = NoiseModel(after_2q=0.01).apply(Circuit().cx(0, 1))
        names = [e.name for e in noisy.entries]
        assert names == ["CX", "DEPOLARIZE2"]

    def test_before_measure(self):
        noisy = NoiseModel(before_measure=0.01).apply(Circuit().m(0))
        names = [e.name for e in noisy.entries]
        assert names == ["X_ERROR", "M"]

    def test_x_basis_measure_gets_z_error(self):
        noisy = NoiseModel(before_measure=0.01).apply(
            Circuit().append("MX", [0])
        )
        assert noisy.entries[0].name == "Z_ERROR"

    def test_after_reset(self):
        noisy = NoiseModel(after_reset=0.01).apply(Circuit().r(0))
        names = [e.name for e in noisy.entries]
        assert names == ["R", "X_ERROR"]

    def test_mr_gets_both(self):
        noisy = NoiseModel(before_measure=0.01, after_reset=0.02).apply(
            Circuit().mr(0)
        )
        names = [e.name for e in noisy.entries]
        assert names == ["X_ERROR", "MR", "X_ERROR"]

    def test_identity_gate_skipped(self):
        noisy = NoiseModel(after_1q=0.01).apply(Circuit().append("I", [0]))
        assert [e.name for e in noisy.entries] == ["I"]

    def test_annotations_untouched(self):
        c = Circuit().m(0).detector(-1)
        noisy = NoiseModel(after_1q=0.5).apply(c)
        assert [e.name for e in noisy.entries] == ["M", "DETECTOR"]


class TestRepeatHandling:
    def test_repeat_bodies_transformed(self):
        c = Circuit().append_repeat(3, Circuit().h(0).m(0))
        noisy = NoiseModel(after_1q=0.01).apply(c)
        block = noisy.entries[0]
        assert isinstance(block, RepeatBlock)
        assert [e.name for e in block.body.entries] == ["H", "DEPOLARIZE1", "M"]

    def test_measurement_count_preserved(self):
        c = Circuit().append_repeat(4, Circuit().mr(0)).m(0)
        noisy = with_noise(c, 0.01)
        assert noisy.num_measurements == c.num_measurements

    def test_detector_semantics_preserved(self):
        import numpy as np
        from repro.core import compile_sampler
        c = Circuit().mr(0).mr(0).detector(-1, -2)
        noiseless_det, _ = compile_sampler(c).sample_detectors(
            500, np.random.default_rng(0)
        )
        assert not noiseless_det.any()
        noisy = with_noise(c, 0.1)
        noisy_det, _ = compile_sampler(noisy).sample_detectors(
            500, np.random.default_rng(0)
        )
        assert noisy_det.any()

    def test_original_not_mutated(self):
        c = Circuit().h(0)
        with_noise(c, 0.5)
        assert len(c.entries) == 1
