"""Tests for the compiled frame program (lowering + execution)."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.frame import FrameProgram, FrameSimulator, compile_frame_program
from repro.frame.program import (
    FeedbackOp,
    MeasureResetOp,
    NoiseOp,
    Unitary1QOp,
    Unitary2QOp,
    disjoint_runs,
)


class TestDisjointRuns:
    def test_unique_targets_one_run(self):
        assert disjoint_runs([0, 1, 2]) == [[0, 1, 2]]

    def test_repeat_splits(self):
        assert disjoint_runs([0, 1, 0]) == [[0, 1], [0]]

    def test_pairs_kept_intact(self):
        assert disjoint_runs([0, 1, 2, 3], arity=2) == [[0, 1, 2, 3]]
        assert disjoint_runs([0, 1, 1, 2], arity=2) == [[0, 1], [1, 2]]

    def test_empty(self):
        assert disjoint_runs([]) == []


class TestLowering:
    def test_consecutive_same_gate_fused(self):
        c = Circuit().h(0).h(1).h(2).m(0, 1, 2)
        program = FrameProgram(c)
        unitary_ops = [op for op in program.ops if isinstance(op, Unitary1QOp)]
        assert len(unitary_ops) == 1
        assert list(unitary_ops[0].idx) == [0, 1, 2]

    def test_pauli_gates_dropped(self):
        c = Circuit().x(0).z(1).y(2).m(0, 1, 2)
        program = FrameProgram(c)
        assert not any(
            isinstance(op, (Unitary1QOp, Unitary2QOp)) for op in program.ops
        )

    def test_two_qubit_op_groups_pairs(self):
        c = Circuit().cx(0, 1, 2, 3).m(0, 1, 2, 3)
        program = FrameProgram(c)
        two_q = [op for op in program.ops if isinstance(op, Unitary2QOp)]
        assert len(two_q) == 1
        assert list(two_q[0].a) == [0, 2]
        assert list(two_q[0].b) == [1, 3]

    def test_overlapping_pairs_split(self):
        c = Circuit().cx(0, 1).cx(1, 2).m(0, 1, 2)
        program = FrameProgram(c)
        two_q = [op for op in program.ops if isinstance(op, Unitary2QOp)]
        assert len(two_q) == 2

    def test_record_buffer_sized_to_measurements(self):
        c = Circuit().m(0, 1).mr(0).m(1)
        program = FrameProgram(c)
        assert program.n_records == 4

    def test_measure_op_record_slices_are_contiguous(self):
        c = Circuit().m(0, 1, 2)
        program = FrameProgram(c)
        ops = [op for op in program.ops if isinstance(op, MeasureResetOp)]
        assert len(ops) == 1
        assert (ops[0].rec_start, ops[0].rec_stop) == (0, 3)

    def test_noise_groups_preresolved(self):
        c = Circuit().depolarize1(0.1, 0, 1, 2).m(0)
        program = FrameProgram(c)
        noise = [op for op in program.ops if isinstance(op, NoiseOp)]
        assert len(noise) == 1
        assert noise[0].n_sites == 3
        assert len(noise[0].plans) == 2  # X symbol and Z symbol

    def test_feedback_resolves_absolute_record_index(self):
        from repro.circuit import RecTarget

        c = Circuit().m(0, 1).append("CX", [RecTarget(-2), 1]).m(1)
        program = FrameProgram(c)
        feedback = [op for op in program.ops if isinstance(op, FeedbackOp)]
        assert len(feedback) == 1
        rec_index, qubit, flip_x, flip_z = feedback[0].actions[0]
        assert rec_index == 0
        assert qubit == 1
        assert (flip_x, flip_z) == (True, False)

    def test_annotations_produce_no_ops(self):
        c = Circuit().tick().m(0).detector(-1).observable_include(0, -1)
        program = FrameProgram(c)
        assert len(program.ops) == 1
        assert len(program.detectors) == 1
        assert len(program.observables) == 1


class TestExecution:
    def test_run_returns_packed_flips(self, rng):
        c = Circuit().h(0).m(0)
        program = compile_frame_program(c)
        packed = program.run(100, rng)
        assert packed.shape == (1, 2)
        assert packed.dtype == np.uint64

    def test_rejects_zero_shots(self, rng):
        with pytest.raises(ValueError):
            compile_frame_program(Circuit().m(0)).run(0, rng)

    def test_deterministic_flips_are_zero(self, rng):
        # X then M: the outcome is deterministic, so no frame flips.
        c = Circuit().x(0).cx(0, 1).m(0, 1)
        packed = compile_frame_program(c).run(200, rng)
        assert not packed.any()

    def test_program_reusable_across_batches(self):
        c = Circuit().h(0).cx(0, 1).x_error(0.2, 0).m(0, 1)
        program = compile_frame_program(c)
        a = program.run(500, np.random.default_rng(3))
        b = program.run(500, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_duplicate_measure_targets(self, rng):
        # M 0 0 must record the same outcome twice (sequential runs).
        c = Circuit().h(0).append("M", [0, 0])
        records = FrameSimulator(c).sample(2000, rng)
        assert np.array_equal(records[:, 0], records[:, 1])

    def test_duplicate_unitary_targets_match_sequential(self, rng):
        # H 0 0 is the identity; a naive gather/scatter would apply H once.
        c = Circuit().append("H", [0, 0]).m(0)
        records = FrameSimulator(c).sample(500, rng)
        assert not records.any()


class TestPackedDetectorDerivation:
    def test_matches_record_xor(self, rng):
        p = 0.2
        c = (
            Circuit()
            .x_error(p, 0)
            .mr(0)
            .x_error(p, 0)
            .mr(0)
            .detector(-1, -2)
            .observable_include(0, -1)
        )
        sim = FrameSimulator(c)
        seed = 77
        records = sim.sample(4000, np.random.default_rng(seed))
        detectors, observables = sim.sample_detectors(
            4000, np.random.default_rng(seed)
        )
        assert np.array_equal(detectors[:, 0], records[:, 0] ^ records[:, 1])
        assert np.array_equal(observables[:, 0], records[:, 1])

    def test_reference_parity_folded_in(self, rng):
        # X 0 then MR twice: both outcomes are 1, detector (parity) is 0,
        # observable (single outcome) is 1 for every shot.
        c = (
            Circuit()
            .x(0)
            .m(0)
            .m(0)
            .detector(-1, -2)
            .observable_include(0, -1)
        )
        detectors, observables = FrameSimulator(c).sample_detectors(64, rng)
        assert not detectors.any()
        assert observables.all()
