"""Tests for the Pauli-frame baseline sampler."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.frame import FrameSimulator


class TestDeterministicCircuits:
    def test_fixed_outcomes(self, rng):
        c = Circuit().x(0).cx(0, 1).m(0, 1)
        records = FrameSimulator(c).sample(100, rng)
        assert np.array_equal(records, np.ones((100, 2), dtype=np.uint8))

    def test_empty_record(self, rng):
        c = Circuit().h(0)
        assert FrameSimulator(c).sample(10, rng).shape == (10, 0)

    def test_zero_shots_rejected(self, rng):
        with pytest.raises(ValueError):
            FrameSimulator(Circuit().m(0)).sample(0, rng)


class TestRandomness:
    def test_plus_state_uniform(self, rng):
        c = Circuit().h(0).m(0)
        records = FrameSimulator(c).sample(40000, rng)
        assert 0.49 < records.mean() < 0.51

    def test_bell_correlation(self, rng):
        c = Circuit().h(0).cx(0, 1).m(0, 1)
        records = FrameSimulator(c).sample(20000, rng)
        assert np.array_equal(records[:, 0], records[:, 1])
        assert 0.48 < records[:, 0].mean() < 0.52

    def test_ghz_all_equal(self, rng):
        c = Circuit().h(0).cx(0, 1).cx(1, 2).m(0, 1, 2)
        records = FrameSimulator(c).sample(5000, rng)
        assert (records.min(axis=1) == records.max(axis=1)).all()

    def test_repeated_measurement_consistent(self, rng):
        c = Circuit().h(0).m(0).m(0)
        records = FrameSimulator(c).sample(5000, rng)
        assert np.array_equal(records[:, 0], records[:, 1])

    def test_reset_kills_randomness(self, rng):
        c = Circuit().h(0).r(0).m(0)
        records = FrameSimulator(c).sample(2000, rng)
        assert not records.any()

    def test_mx_of_plus_deterministic(self, rng):
        c = Circuit().h(0).append("MX", [0])
        records = FrameSimulator(c).sample(500, rng)
        assert not records.any()


class TestNoise:
    def test_x_error_rate(self, rng):
        c = Circuit().x_error(0.25, 0).m(0)
        records = FrameSimulator(c).sample(60000, rng)
        assert abs(records.mean() - 0.25) < 0.01

    def test_z_error_invisible(self, rng):
        c = Circuit().z_error(1.0, 0).m(0)
        records = FrameSimulator(c).sample(100, rng)
        assert not records.any()

    def test_z_error_visible_after_h(self, rng):
        c = Circuit().h(0).z_error(1.0, 0).h(0).m(0)
        records = FrameSimulator(c).sample(100, rng)
        assert records.all()

    def test_correlated_error(self, rng):
        c = Circuit.from_text("E(1) X0 X2\nM 0 1 2")
        records = FrameSimulator(c).sample(50, rng)
        assert np.array_equal(records.mean(axis=0), [1, 0, 1])

    def test_depolarize1_on_measurement(self, rng):
        # DEPOLARIZE1(p) flips a Z measurement with probability 2p/3.
        p = 0.3
        c = Circuit().depolarize1(p, 0).m(0)
        records = FrameSimulator(c).sample(60000, rng)
        assert abs(records.mean() - 2 * p / 3) < 0.01

    def test_noise_independent_across_shots(self, rng):
        c = Circuit().x_error(0.5, 0).m(0)
        records = FrameSimulator(c).sample(2000, rng)[:, 0]
        # Adjacent-shot correlation should be near zero.
        matches = (records[:-1] == records[1:]).mean()
        assert 0.45 < matches < 0.55


class TestDetectors:
    def test_detector_definitions_collected(self):
        c = Circuit().mr(0).mr(0).detector(-1, -2).observable_include(0, -1)
        sim = FrameSimulator(c)
        assert len(sim.detectors) == 1
        assert list(sim.detectors[0]) == [1, 0]
        assert len(sim.observables) == 1

    def test_noiseless_detectors_silent(self, rng):
        c = Circuit().h(0).cx(0, 1).m(0, 1).detector(-1, -2)
        det, _ = FrameSimulator(c).sample_detectors(2000, rng)
        assert not det.any()

    def test_detector_rate(self, rng):
        p = 0.15
        c = Circuit().x_error(p, 0).mr(0).mr(0).detector(-1, -2)
        det, _ = FrameSimulator(c).sample_detectors(60000, rng)
        assert abs(det.mean() - p) < 0.01


class TestReference:
    def test_custom_reference_shifts_outputs(self, rng):
        c = Circuit().m(0, 1)
        base = FrameSimulator(c).sample(10, rng)
        shifted = FrameSimulator(
            c, reference=np.array([1, 0], dtype=np.uint8)
        ).sample(10, rng)
        assert np.array_equal(shifted[:, 0], base[:, 0] ^ 1)
        assert np.array_equal(shifted[:, 1], base[:, 1])


class TestContiguity:
    def test_sample_rows_are_c_contiguous(self, rng):
        c = Circuit().x_error(0.1, 0).m(0, 1).m(0)
        for shots in (1, 64, 130):
            records = FrameSimulator(c).sample(shots, rng)
            assert records.flags.c_contiguous, shots

    def test_detector_rows_are_c_contiguous(self, rng):
        c = Circuit().x_error(0.1, 0).mr(0).mr(0).detector(-1, -2)
        c = c.observable_include(0, -1)
        detectors, observables = FrameSimulator(c).sample_detectors(130, rng)
        assert detectors.flags.c_contiguous
        assert observables.flags.c_contiguous


class TestPackedDetectors:
    def test_packed_view_matches_unpacked_bitwise(self):
        from repro.gf2 import bitops

        c = Circuit().x_error(0.12, 0).mr(0).mr(0).detector(-1, -2)
        c = c.observable_include(0, -1)
        for mode in ("compiled", "interpreted"):
            sim = FrameSimulator(c, mode=mode)
            det, obs = sim.sample_detectors(333, np.random.default_rng(5))
            det_p, obs_p = sim.sample_detectors_packed(
                333, np.random.default_rng(5)
            )
            assert det_p.dtype == np.uint64
            assert np.array_equal(bitops.pack_rows(det), det_p), mode
            assert np.array_equal(bitops.pack_rows(obs), obs_p), mode

    def test_packed_reference_parity_applied(self):
        """A deterministically-firing detector must fire in the packed
        view too (the constant reference parity is XORed in packed)."""
        c = Circuit().x(0).m(0).detector(-1)
        sim = FrameSimulator(c)
        det_p, _ = sim.sample_detectors_packed(70, np.random.default_rng(0))
        from repro.gf2 import bitops

        assert bitops.unpack_rows(det_p, 1).all()
