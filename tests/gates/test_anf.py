"""Tests for ANF kernel derivation."""

import numpy as np
import pytest

from repro.gates.anf import gate_kernel, moebius_transform
from repro.gates.tables import conjugation_table
from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q


class TestMoebius:
    def test_constant_zero(self):
        assert not moebius_transform(np.zeros(4, dtype=np.uint8)).any()

    def test_constant_one(self):
        coeffs = moebius_transform(np.ones(4, dtype=np.uint8))
        assert coeffs.tolist() == [1, 0, 0, 0]

    def test_single_variable(self):
        # f(x0, x1) = x0  (truth table indexed by bits: f=1 when bit0 set)
        values = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert moebius_transform(values).tolist() == [0, 1, 0, 0]

    def test_and(self):
        values = np.array([0, 0, 0, 1], dtype=np.uint8)
        assert moebius_transform(values).tolist() == [0, 0, 0, 1]

    def test_xor(self):
        values = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert moebius_transform(values).tolist() == [0, 1, 1, 0]

    def test_involution(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2, 16).astype(np.uint8)
        assert np.array_equal(
            moebius_transform(moebius_transform(values)), values
        )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            moebius_transform(np.zeros(3, dtype=np.uint8))


class TestKernelsMatchTables:
    @pytest.mark.parametrize("name", sorted(UNITARIES_1Q))
    def test_1q_kernels(self, name):
        kernel = gate_kernel(name)
        table = conjugation_table(name)
        for x in (0, 1):
            for z in (0, 1):
                words = [
                    np.array([_U(x)], dtype=np.uint64),
                    np.array([_U(z)], dtype=np.uint64),
                ]
                nx, nz, flip = (int(w[0] & 1) for w in kernel.evaluate(words))
                idx = (x << 1) | z
                assert (nx, nz) == tuple(table.outputs[idx][:2])
                assert flip == table.flips[idx]

    @pytest.mark.parametrize("name", sorted(UNITARIES_2Q))
    def test_2q_kernels(self, name):
        kernel = gate_kernel(name)
        table = conjugation_table(name)
        for idx in range(16):
            bits = [(idx >> (3 - j)) & 1 for j in range(4)]
            words = [np.array([_U(b)], dtype=np.uint64) for b in bits]
            outs = [int(w[0] & 1) for w in kernel.evaluate(words)]
            assert outs[:4] == list(table.outputs[idx])
            assert outs[4] == table.flips[idx]

    def test_word_parallelism(self):
        # 64 independent rows through an S gate in one word.
        rng = np.random.default_rng(1)
        xs = rng.integers(0, 2**64, dtype=np.uint64)
        zs = rng.integers(0, 2**64, dtype=np.uint64)
        kernel = gate_kernel("S")
        nx, nz, flip = kernel.evaluate(
            [np.array([xs]), np.array([zs])]
        )
        # S: x' = x, z' = x ^ z, flip = x & z.
        assert nx[0] == xs
        assert nz[0] == xs ^ zs
        assert flip[0] == xs & zs


def _U(bit: int) -> np.uint64:
    return np.uint64(bit)
