"""Tests for the derived Clifford conjugation tables.

The tables are produced numerically from the unitaries, so these tests
check (a) the classic textbook rules appear, (b) internal consistency
(unitarity of the symplectic action, flip correctness against dense
conjugation), and (c) the basis-change gates used for MX/MY.
"""

import numpy as np
import pytest

from repro.gates import conjugation_table, get_gate
from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q
from repro.gf2.linalg import rank
from repro.pauli import PauliString, dense_pauli


def conjugate_via_table(name: str, pauli: PauliString) -> PauliString:
    """Push a +1-sign Pauli through a 1q/2q gate using the table."""
    table = conjugation_table(name)
    if table.n_qubits == 1:
        x, z, flip = table.apply_1q(pauli.xs, pauli.zs)
        out = PauliString(x, z, int(np.count_nonzero(x & z)))
    else:
        x1, z1, x2, z2, flip = table.apply_2q(
            pauli.xs[:1], pauli.zs[:1], pauli.xs[1:], pauli.zs[1:]
        )
        x = np.concatenate([x1, x2])
        z = np.concatenate([z1, z2])
        out = PauliString(x, z, int(np.count_nonzero(x & z)))
    if int(np.atleast_1d(flip)[0]):
        out = out * PauliString(
            np.zeros_like(out.xs), np.zeros_like(out.zs), 2
        )
    return out


class TestTextbookRules:
    def test_h_swaps_x_and_z(self):
        assert str(conjugate_via_table("H", PauliString.from_str("X"))) == "+Z"
        assert str(conjugate_via_table("H", PauliString.from_str("Z"))) == "+X"
        assert str(conjugate_via_table("H", PauliString.from_str("Y"))) == "-Y"

    def test_s_rotates_x_to_y(self):
        assert str(conjugate_via_table("S", PauliString.from_str("X"))) == "+Y"
        assert str(conjugate_via_table("S", PauliString.from_str("Z"))) == "+Z"
        assert str(conjugate_via_table("S", PauliString.from_str("Y"))) == "-X"

    def test_cx_propagation(self):
        assert str(conjugate_via_table("CX", PauliString.from_str("X_"))) == "+XX"
        assert str(conjugate_via_table("CX", PauliString.from_str("_X"))) == "+_X"
        assert str(conjugate_via_table("CX", PauliString.from_str("Z_"))) == "+Z_"
        assert str(conjugate_via_table("CX", PauliString.from_str("_Z"))) == "+ZZ"

    def test_c_xyz_cycles(self):
        assert str(conjugate_via_table("C_XYZ", PauliString.from_str("X"))) == "+Y"
        assert str(conjugate_via_table("C_XYZ", PauliString.from_str("Y"))) == "+Z"
        assert str(conjugate_via_table("C_XYZ", PauliString.from_str("Z"))) == "+X"

    def test_pauli_gates_flip_anticommuting(self):
        assert str(conjugate_via_table("X", PauliString.from_str("Z"))) == "-Z"
        assert str(conjugate_via_table("X", PauliString.from_str("X"))) == "+X"
        assert str(conjugate_via_table("Z", PauliString.from_str("X"))) == "-X"


class TestAllGatesConsistent:
    @pytest.mark.parametrize("name", sorted(UNITARIES_1Q))
    def test_1q_tables_match_dense_conjugation(self, name):
        unitary = UNITARIES_1Q[name]
        for letter in ("X", "Y", "Z"):
            pauli = PauliString.from_str(letter)
            via_table = conjugate_via_table(name, pauli)
            expected = unitary @ dense_pauli(pauli) @ unitary.conj().T
            assert np.allclose(dense_pauli(via_table), expected), (
                f"{name} mishandles {letter}"
            )

    @pytest.mark.parametrize("name", sorted(UNITARIES_2Q))
    def test_2q_tables_match_dense_conjugation(self, name):
        unitary = UNITARIES_2Q[name]
        for letters in ("X_", "_X", "Z_", "_Z", "YX", "ZY", "XX", "YY"):
            pauli = PauliString.from_str(letters)
            via_table = conjugate_via_table(name, pauli)
            expected = unitary @ dense_pauli(pauli) @ unitary.conj().T
            assert np.allclose(dense_pauli(via_table), expected), (
                f"{name} mishandles {letters}"
            )

    @pytest.mark.parametrize("name", sorted(UNITARIES_1Q) + sorted(UNITARIES_2Q))
    def test_symplectic_action_invertible(self, name):
        sym = conjugation_table(name).symplectic_matrix()
        assert rank(sym) == sym.shape[0]

    @pytest.mark.parametrize("name", sorted(UNITARIES_1Q) + sorted(UNITARIES_2Q))
    def test_identity_maps_to_identity(self, name):
        table = conjugation_table(name)
        assert not np.any(table.outputs[0])
        assert table.flips[0] == 0


class TestBasisChangeGates:
    def test_h_maps_x_to_plus_z(self):
        # MX conjugates with H: H X H+ = +Z, so outcomes are unflipped.
        assert str(conjugate_via_table("H", PauliString.from_str("X"))) == "+Z"

    def test_h_yz_maps_y_to_plus_z(self):
        # MY conjugates with H_YZ: must send Y to +Z exactly.
        assert str(conjugate_via_table("H_YZ", PauliString.from_str("Y"))) == "+Z"

    def test_h_yz_self_inverse(self):
        table = conjugation_table("H_YZ")
        sym = table.symplectic_matrix()
        assert np.array_equal((sym @ sym) % 2, np.eye(2, dtype=np.uint8))


class TestGateDatabase:
    def test_aliases_resolve(self):
        assert get_gate("CNOT").name == "CX"
        assert get_gate("MZ").name == "M"
        assert get_gate("E").name == "CORRELATED_ERROR"

    def test_case_insensitive(self):
        assert get_gate("h").name == "H"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_gate("T")  # T is not Clifford; must not silently work

    def test_non_unitary_has_no_table(self):
        with pytest.raises(ValueError):
            get_gate("M").table
