"""Shared test utilities: random circuit generation and distribution
comparison between simulators."""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit

SINGLE_QUBIT_GATES = (
    "H", "S", "S_DAG", "X", "Y", "Z", "SQRT_X", "SQRT_X_DAG",
    "SQRT_Y", "H_XY", "H_YZ", "C_XYZ", "C_ZYX",
)
TWO_QUBIT_GATES = (
    "CX", "CY", "CZ", "SWAP", "ISWAP", "XCX", "XCZ", "YCY",
    "SQRT_XX", "SQRT_ZZ",
)
MEASUREMENTS = ("M", "MX", "MY")
RESETS = ("R", "RX", "RY")


def random_clifford_circuit(
    rng: np.random.Generator,
    n_qubits: int,
    depth: int,
    p_two_qubit: float = 0.25,
    p_noise: float = 0.0,
    p_measure: float = 0.1,
    p_reset: float = 0.05,
    p_feedback: float = 0.0,
    noise_strength: float = 0.3,
    final_measure: bool = True,
) -> Circuit:
    """A random circuit mixing gates, channels, measurements, resets and
    (optionally) classically-controlled Paulis."""
    from repro.circuit import RecTarget

    circuit = Circuit()
    measured = 0
    for _ in range(depth):
        r = rng.random()
        if r < p_feedback and measured > 0:
            lookback = -int(rng.integers(1, min(measured, 4) + 1))
            circuit.append(
                str(rng.choice(["CX", "CY", "CZ"])),
                [RecTarget(lookback), int(rng.integers(n_qubits))],
            )
        elif r < p_feedback + p_two_qubit and n_qubits >= 2:
            a, b = rng.choice(n_qubits, 2, replace=False)
            circuit.append(str(rng.choice(TWO_QUBIT_GATES)), [int(a), int(b)])
        elif r < p_feedback + p_two_qubit + p_noise:
            kind = rng.random()
            qubit = int(rng.integers(n_qubits))
            if kind < 0.4:
                circuit.append("DEPOLARIZE1", [qubit], noise_strength)
            elif kind < 0.6:
                circuit.append(
                    str(rng.choice(["X_ERROR", "Y_ERROR", "Z_ERROR"])),
                    [qubit],
                    noise_strength,
                )
            elif kind < 0.8 and n_qubits >= 2:
                a, b = rng.choice(n_qubits, 2, replace=False)
                circuit.append("DEPOLARIZE2", [int(a), int(b)], noise_strength)
            else:
                circuit.append(
                    "PAULI_CHANNEL_1", [qubit],
                    [noise_strength / 3] * 3,
                )
        elif r < p_feedback + p_two_qubit + p_noise + p_measure:
            circuit.append(
                str(rng.choice(MEASUREMENTS)), [int(rng.integers(n_qubits))]
            )
            measured += 1
        elif r < p_feedback + p_two_qubit + p_noise + p_measure + p_reset:
            name = str(rng.choice(RESETS + ("MR",)))
            circuit.append(name, [int(rng.integers(n_qubits))])
            if name == "MR":
                measured += 1
        else:
            circuit.append(
                str(rng.choice(SINGLE_QUBIT_GATES)),
                [int(rng.integers(n_qubits))],
            )
    if final_measure:
        circuit.m(*range(n_qubits))
    return circuit


def record_distribution(records: np.ndarray) -> dict[int, float]:
    """Empirical distribution over whole measurement records."""
    total = records.shape[0]
    return {k: c / total for k, c in counts_by_record(records).items()}


def total_variation(p: dict[int, float], q: dict[int, float]) -> float:
    """Total-variation distance between two record distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def counts_by_record(records: np.ndarray) -> dict[int, int]:
    """Raw outcome counts over whole records (keys as packed ints)."""
    if records.shape[1] > 20:
        raise ValueError("record too wide for exact count comparison")
    keys = records @ (1 << np.arange(records.shape[1], dtype=np.int64))
    values, counts = np.unique(keys, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def chi_square_two_sample(
    counts_a: dict[int, int], counts_b: dict[int, int]
) -> tuple[float, float]:
    """Two-sample chi-square homogeneity test between outcome counts.

    Returns ``(statistic, threshold)`` where ``threshold`` is the
    approximate 99.95% quantile of the chi-square distribution with
    ``cells - 1`` degrees of freedom (Wilson-Hilferty), so
    ``statistic < threshold`` is a [false-positive rate ~ 5e-4] check
    that both samplers draw from the same distribution.
    """
    total_a = sum(counts_a.values())
    total_b = sum(counts_b.values())
    k_a = (total_b / total_a) ** 0.5
    k_b = (total_a / total_b) ** 0.5
    cells = set(counts_a) | set(counts_b)
    statistic = 0.0
    for cell in cells:
        observed_a = counts_a.get(cell, 0)
        observed_b = counts_b.get(cell, 0)
        statistic += (k_a * observed_a - k_b * observed_b) ** 2 / (
            observed_a + observed_b
        )
    dof = max(len(cells) - 1, 1)
    z = 3.2905  # standard normal quantile at 0.9995
    threshold = dof * (1 - 2 / (9 * dof) + z * (2 / (9 * dof)) ** 0.5) ** 3
    return statistic, threshold


def append_random_annotations(
    circuit: Circuit, rng: np.random.Generator, n_detectors: int = 2
) -> Circuit:
    """Append random DETECTOR/OBSERVABLE_INCLUDE lookbacks to a circuit."""
    n_m = circuit.num_measurements
    if n_m == 0:
        return circuit
    for _ in range(n_detectors):
        size = int(rng.integers(1, min(n_m, 3) + 1))
        lookbacks = rng.choice(n_m, size=size, replace=False)
        circuit.detector(*(-int(k) - 1 for k in lookbacks))
    size = int(rng.integers(1, min(n_m, 4) + 1))
    lookbacks = rng.choice(n_m, size=size, replace=False)
    circuit.observable_include(0, *(-int(k) - 1 for k in lookbacks))
    return circuit
