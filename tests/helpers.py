"""Shared test utilities: random circuit generation and distribution
comparison between simulators."""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit

SINGLE_QUBIT_GATES = (
    "H", "S", "S_DAG", "X", "Y", "Z", "SQRT_X", "SQRT_X_DAG",
    "SQRT_Y", "H_XY", "H_YZ", "C_XYZ", "C_ZYX",
)
TWO_QUBIT_GATES = (
    "CX", "CY", "CZ", "SWAP", "ISWAP", "XCX", "XCZ", "YCY",
    "SQRT_XX", "SQRT_ZZ",
)
MEASUREMENTS = ("M", "MX", "MY")
RESETS = ("R", "RX", "RY")


def random_clifford_circuit(
    rng: np.random.Generator,
    n_qubits: int,
    depth: int,
    p_two_qubit: float = 0.25,
    p_noise: float = 0.0,
    p_measure: float = 0.1,
    p_reset: float = 0.05,
    p_feedback: float = 0.0,
    noise_strength: float = 0.3,
    final_measure: bool = True,
) -> Circuit:
    """A random circuit mixing gates, channels, measurements, resets and
    (optionally) classically-controlled Paulis."""
    from repro.circuit import RecTarget

    circuit = Circuit()
    measured = 0
    for _ in range(depth):
        r = rng.random()
        if r < p_feedback and measured > 0:
            lookback = -int(rng.integers(1, min(measured, 4) + 1))
            circuit.append(
                str(rng.choice(["CX", "CY", "CZ"])),
                [RecTarget(lookback), int(rng.integers(n_qubits))],
            )
        elif r < p_feedback + p_two_qubit and n_qubits >= 2:
            a, b = rng.choice(n_qubits, 2, replace=False)
            circuit.append(str(rng.choice(TWO_QUBIT_GATES)), [int(a), int(b)])
        elif r < p_feedback + p_two_qubit + p_noise:
            kind = rng.random()
            qubit = int(rng.integers(n_qubits))
            if kind < 0.4:
                circuit.append("DEPOLARIZE1", [qubit], noise_strength)
            elif kind < 0.6:
                circuit.append(
                    str(rng.choice(["X_ERROR", "Y_ERROR", "Z_ERROR"])),
                    [qubit],
                    noise_strength,
                )
            elif kind < 0.8 and n_qubits >= 2:
                a, b = rng.choice(n_qubits, 2, replace=False)
                circuit.append("DEPOLARIZE2", [int(a), int(b)], noise_strength)
            else:
                circuit.append(
                    "PAULI_CHANNEL_1", [qubit],
                    [noise_strength / 3] * 3,
                )
        elif r < p_feedback + p_two_qubit + p_noise + p_measure:
            circuit.append(
                str(rng.choice(MEASUREMENTS)), [int(rng.integers(n_qubits))]
            )
            measured += 1
        elif r < p_feedback + p_two_qubit + p_noise + p_measure + p_reset:
            name = str(rng.choice(RESETS + ("MR",)))
            circuit.append(name, [int(rng.integers(n_qubits))])
            if name == "MR":
                measured += 1
        else:
            circuit.append(
                str(rng.choice(SINGLE_QUBIT_GATES)),
                [int(rng.integers(n_qubits))],
            )
    if final_measure:
        circuit.m(*range(n_qubits))
    return circuit


def record_distribution(records: np.ndarray) -> dict[int, float]:
    """Empirical distribution over whole measurement records."""
    if records.shape[1] > 20:
        raise ValueError("record too wide for exact distribution comparison")
    keys = records @ (1 << np.arange(records.shape[1], dtype=np.int64))
    values, counts = np.unique(keys, return_counts=True)
    total = records.shape[0]
    return {int(v): c / total for v, c in zip(values, counts)}


def total_variation(p: dict[int, float], q: dict[int, float]) -> float:
    """Total-variation distance between two record distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)
