"""Tests for detector-error-model extraction from symbolic phases."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import compile_sampler
from repro.dem import ErrorMechanism, extract_dem
from repro.qec import repetition_code_memory, surface_code_memory


class TestSmallCircuits:
    def test_single_x_error(self):
        c = Circuit().x_error(0.25, 0).mr(0).mr(0).detector(-1, -2)
        dem = extract_dem(c)
        assert dem.n_detectors == 1
        assert len(dem.mechanisms) == 1
        mech = dem.mechanisms[0]
        assert mech.probability == 0.25
        assert mech.detectors == (0,)
        assert mech.observables == ()

    def test_observable_signature(self):
        c = (
            Circuit()
            .x_error(0.1, 0)
            .mr(0)
            .detector(-1)
            .observable_include(0, -1)
        )
        dem = extract_dem(c)
        assert dem.mechanisms[0].observables == (0,)

    def test_depolarize_merges_indistinguishable_patterns(self):
        c = Circuit().depolarize1(0.3, 0).mr(0).detector(-1)
        dem = extract_dem(c)
        # X and Y both flip the detector — indistinguishable, so they
        # merge (mutually exclusive within the site: probabilities add);
        # the invisible Z pattern stays separate.
        assert len(dem.mechanisms) == 2
        probs = sorted(m.probability for m in dem.mechanisms)
        assert np.allclose(probs, [0.1, 0.2])

    def test_depolarize_unmerged_gives_three_mechanisms(self):
        c = Circuit().depolarize1(0.3, 0).mr(0).detector(-1)
        dem = extract_dem(c, merge=False)
        # X, Z, Y patterns of one group; all in one exclusive group.
        assert len(dem.mechanisms) == 3
        assert len(dem.groups) == 1
        probs = sorted(m.probability for m in dem.mechanisms)
        assert np.allclose(probs, [0.1, 0.1, 0.1])

    def test_independent_duplicates_xor_convolve(self):
        # Two independent X_ERROR sites with the same signature: the
        # merged probability is P(exactly one fires).
        c = Circuit().x_error(0.1, 0).x_error(0.2, 0).mr(0).detector(-1)
        dem = extract_dem(c)
        assert len(dem.mechanisms) == 1
        expected = 0.1 * 0.8 + 0.2 * 0.9
        assert dem.mechanisms[0].probability == pytest.approx(expected)

    def test_merged_helper_is_idempotent_and_signature_unique(self):
        c = Circuit().depolarize1(0.3, 0).x_error(0.1, 0).mr(0).detector(-1)
        dem = extract_dem(c, merge=False)
        merged = dem.merged()
        signatures = [(m.detectors, m.observables) for m in merged.mechanisms]
        assert len(signatures) == len(set(signatures))
        again = merged.merged()
        assert [
            (m.probability, m.detectors, m.observables)
            for m in again.mechanisms
        ] == [
            (m.probability, m.detectors, m.observables)
            for m in merged.mechanisms
        ]

    def test_invisible_fault_has_empty_signature(self):
        c = Circuit().z_error(0.2, 0).mr(0).detector(-1)
        dem = extract_dem(c)
        assert dem.mechanisms[0].detectors == ()
        assert dem.mechanisms[0].observables == ()

    def test_min_probability_filter(self):
        c = Circuit().x_error(0.001, 0).mr(0).detector(-1)
        assert len(extract_dem(c, min_probability=0.01).mechanisms) == 0

    def test_measurement_symbols_excluded(self):
        c = Circuit().h(0).m(0).x_error(0.1, 0).mr(0).mr(0).detector(-1, -2)
        dem = extract_dem(c)
        assert len(dem.mechanisms) == 1  # only the noise site

    def test_accepts_precompiled_sampler(self):
        c = Circuit().x_error(0.5, 0).mr(0).detector(-1)
        sampler = compile_sampler(c)
        dem = extract_dem(sampler)
        assert len(dem.mechanisms) == 1


class TestQecDems:
    def test_repetition_dem_is_graphlike(self):
        c = repetition_code_memory(
            5, 3, data_flip_probability=0.01, measure_flip_probability=0.01
        )
        dem = extract_dem(c)
        assert dem.graphlike
        # Every data flip hits <= 2 detectors, every measure flip exactly 2
        # (or 1 at the time boundary).
        assert all(1 <= len(m.detectors) <= 2 for m in dem.mechanisms)

    def test_surface_dem_mechanism_count(self):
        c = surface_code_memory(3, 2, after_clifford_depolarization=0.001)
        raw = extract_dem(c, merge=False)
        # One group per DEPOLARIZE2 site, 15 patterns each.
        sites = sum(
            len(i.targets) // 2
            for i in c.flattened()
            if i.name == "DEPOLARIZE2"
        )
        assert len(raw.groups) == sites
        assert len(raw.mechanisms) == 15 * sites
        # The merged default collapses indistinguishable patterns: far
        # fewer mechanisms, every signature unique.
        merged = extract_dem(c)
        assert len(merged.mechanisms) < len(raw.mechanisms)
        signatures = [(m.detectors, m.observables) for m in merged.mechanisms]
        assert len(signatures) == len(set(signatures))

    def test_filter_graphlike(self):
        c = surface_code_memory(3, 2, after_clifford_depolarization=0.01)
        dem = extract_dem(c)
        graphlike = dem.filter_graphlike()
        assert graphlike.graphlike
        assert len(graphlike.mechanisms) < len(dem.mechanisms)


class TestDemSampling:
    def test_matches_circuit_sampler(self):
        c = repetition_code_memory(
            3, 2, data_flip_probability=0.1, measure_flip_probability=0.05
        )
        dem = extract_dem(c)
        det_dem, obs_dem = dem.sample(60000, np.random.default_rng(0))
        det_circ, obs_circ = compile_sampler(c).sample_detectors(
            60000, np.random.default_rng(1)
        )
        assert np.allclose(
            det_dem.mean(axis=0), det_circ.mean(axis=0), atol=0.01
        )
        assert np.allclose(
            obs_dem.mean(axis=0), obs_circ.mean(axis=0), atol=0.01
        )

    def test_detector_error_rates_match_sampling(self):
        c = repetition_code_memory(3, 2, data_flip_probability=0.08)
        dem = extract_dem(c)
        predicted = dem.detector_error_rates()
        det, _ = dem.sample(60000, np.random.default_rng(2))
        assert np.allclose(det.mean(axis=0), predicted, atol=0.01)


class TestModelValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ErrorMechanism(1.5, (0,), ())

    def test_str_format(self):
        mech = ErrorMechanism(0.125, (0, 3), (1,))
        assert str(mech) == "error(0.125) D0 D3 L1"

    def test_graphlike_flag(self):
        assert ErrorMechanism(0.1, (0, 1), ()).is_graphlike
        assert not ErrorMechanism(0.1, (0, 1, 2), ()).is_graphlike
