"""Tests for the dense statevector oracle itself."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.reference.statevector import StatevectorSimulator, sample_records


class TestGates:
    def test_x_flips(self, rng):
        sim = StatevectorSimulator(1, rng)
        sim.apply_gate("X", (0,))
        assert np.allclose(np.abs(sim.state), [0, 1])

    def test_h_superposes(self, rng):
        sim = StatevectorSimulator(1, rng)
        sim.apply_gate("H", (0,))
        assert np.allclose(np.abs(sim.state) ** 2, [0.5, 0.5])

    def test_cx_entangles(self, rng):
        sim = StatevectorSimulator(2, rng)
        sim.apply_gate("H", (0,))
        sim.apply_gate("CX", (0, 1))
        assert np.allclose(np.abs(sim.state) ** 2, [0.5, 0, 0, 0.5])

    def test_qubit_ordering_msb_first(self, rng):
        sim = StatevectorSimulator(2, rng)
        sim.apply_gate("X", (0,))
        # Qubit 0 is the most significant bit: state |10> = index 2.
        assert np.allclose(np.abs(sim.state), [0, 0, 1, 0])

    def test_max_qubits_capped(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(20)


class TestMeasurement:
    def test_collapse_repeatable(self, rng):
        sim = StatevectorSimulator(1, rng)
        sim.apply_gate("H", (0,))
        first = sim._measure(0, "Z")
        assert sim._measure(0, "Z") == first

    def test_statistics(self, rng):
        c = Circuit().h(0).m(0)
        records = sample_records(c, 600, rng)
        assert 0.42 < records.mean() < 0.58

    def test_bell_correlation(self, rng):
        c = Circuit().h(0).cx(0, 1).m(0, 1)
        records = sample_records(c, 200, rng)
        assert np.array_equal(records[:, 0], records[:, 1])

    def test_mx_of_plus(self, rng):
        c = Circuit().h(0).append("MX", [0])
        assert not sample_records(c, 50, rng).any()

    def test_reset(self, rng):
        c = Circuit().h(0).r(0).m(0)
        assert not sample_records(c, 50, rng).any()


class TestNoise:
    def test_x_error_rate(self, rng):
        c = Circuit().x_error(0.4, 0).m(0)
        records = sample_records(c, 800, rng)
        assert 0.32 < records.mean() < 0.48

    def test_correlated_error(self, rng):
        c = Circuit.from_text("E(1) X0 X1\nM 0 1")
        records = sample_records(c, 20, rng)
        assert records.all()
