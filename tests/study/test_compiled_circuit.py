"""CompiledCircuit: lazy artifacts, cache sharing, pipeline equivalence."""

import numpy as np
import pytest

from repro.backends import compile_backend
from repro.decoders import compile_decoder
from repro.dem import extract_dem
from repro.engine import ExecutionOptions, Task, collect
from repro.engine.cache import reset_shared_cache, shared_cache
from repro.qec import repetition_code_memory
from repro.study import CompiledCircuit

SEED = 7


def make_circuit(p=0.08):
    return repetition_code_memory(
        3, rounds=2, data_flip_probability=p, measure_flip_probability=p
    )


@pytest.fixture(autouse=True)
def clean_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


class TestConstruction:
    def test_circuit_compile_returns_handle(self):
        compiled = make_circuit().compile()
        assert isinstance(compiled, CompiledCircuit)
        assert compiled.sampler_name == "symbolic"
        assert compiled.decoder_name == "compiled-matching"

    def test_aliases_resolve_to_canonical_names(self):
        compiled = make_circuit().compile(sampler="symphase", decoder="mwpm")
        assert compiled.sampler_name == "symbolic"
        assert compiled.decoder_name == "matching"

    def test_unknown_names_raise_descriptive_errors(self):
        with pytest.raises(ValueError, match="registered backend"):
            make_circuit().compile(sampler="nope")
        with pytest.raises(ValueError, match="registered decoder"):
            make_circuit().compile(decoder="nope")

    def test_construction_is_lazy(self):
        make_circuit().compile()
        assert len(shared_cache()) == 0


class TestCacheSharing:
    def test_equal_circuits_share_one_sampler(self):
        a = make_circuit().compile()
        b = make_circuit().compile()
        assert a.sampler is b.sampler
        assert a.dem is b.dem
        assert a.decoder is b.decoder

    def test_cache_keys_match_engine_workers(self):
        """A handle warmed interactively pre-pays the engine's cache."""
        compiled = make_circuit().compile()
        _ = compiled.sampler, compiled.dem, compiled.decoder
        cache = shared_cache()
        fp = compiled.fingerprint
        assert ("sampler", fp, "symbolic") in cache
        assert ("dem", fp) in cache
        assert ("decoder", fp, "compiled-matching") in cache


class TestSampling:
    def test_sample_accepts_seed_or_generator(self):
        compiled = make_circuit().compile()
        from_seed = compiled.sample(50, SEED)
        from_rng = compiled.sample(50, np.random.default_rng(SEED))
        assert np.array_equal(from_seed, from_rng)

    def test_detect_shapes(self):
        circuit = make_circuit()
        detectors, observables = circuit.compile().detect(20, SEED)
        assert detectors.shape == (20, circuit.num_detectors)
        assert observables.shape == (20, circuit.num_observables)

    @pytest.mark.parametrize("decoder", ["matching", "compiled-matching"])
    def test_decode_bitwise_matches_manual_pipeline(self, decoder):
        """`.decode()` == sample_detectors -> extract_dem ->
        compile_decoder -> decode_batch, bit for bit."""
        circuit = make_circuit()
        predictions, observables = circuit.compile(
            sampler="frame", decoder=decoder
        ).decode(300, SEED)

        sampler = compile_backend(circuit, "frame")
        det, obs = sampler.sample_detectors(300, np.random.default_rng(SEED))
        manual = compile_decoder(extract_dem(circuit), decoder).decode_batch(det)
        assert np.array_equal(predictions, manual)
        assert np.array_equal(observables, obs)

    def test_decoder_none_cannot_decode(self):
        compiled = make_circuit().compile(decoder="none")
        with pytest.raises(ValueError, match="decoder='none'"):
            _ = compiled.decoder


class TestEngineEquivalence:
    def test_logical_error_rate_matches_task_collect_path(self):
        """The acceptance contract: same counts as the pre-redesign
        Task/collect path for the same seed."""
        circuit = make_circuit()
        rate = circuit.compile().logical_error_rate(
            2_000, seed=SEED, chunk_shots=500
        )
        stats = collect(
            [Task(circuit, decoder="compiled-matching", sampler="symbolic",
                  max_shots=2_000)],
            base_seed=SEED, chunk_shots=500,
        )[0]
        assert rate == stats.error_rate

    def test_logical_error_rate_decoder_none_consistent_across_paths(self):
        """decoder='none' counts raw observable flips on both the
        engine (int-seed) and Generator paths."""
        circuit = repetition_code_memory(
            3, rounds=2,
            data_flip_probability=0.3, measure_flip_probability=0.3,
        )
        compiled = circuit.compile(sampler="frame", decoder="none")
        engine_rate = compiled.logical_error_rate(400, seed=SEED)
        stats = collect(
            [Task(circuit, decoder="none", sampler="frame", max_shots=400)],
            base_seed=SEED,
        )[0]
        assert engine_rate == stats.error_rate
        rng_rate = compiled.logical_error_rate(
            400, np.random.default_rng(SEED)
        )
        _, observables = compiled.detect(400, np.random.default_rng(SEED))
        assert rng_rate == float(observables.any(axis=1).mean())
        assert rng_rate > 0  # sanity: flips actually occurred

    def test_logical_error_rate_generator_path(self):
        """With an explicit Generator the shots come from that stream —
        one in-process batch, matching the manual pipeline."""
        circuit = make_circuit()
        compiled = circuit.compile(sampler="frame")
        rate = compiled.logical_error_rate(400, np.random.default_rng(SEED))
        predictions, observables = compiled.decode(
            400, np.random.default_rng(SEED)
        )
        expected = float((predictions != observables).any(axis=1).mean())
        assert rate == expected

    def test_logical_error_rate_accepts_seed_sequence(self):
        """A SeedSequence cannot thread into engine chunks; it takes the
        single-batch path, like a Generator."""
        compiled = make_circuit().compile(sampler="frame")
        rate = compiled.logical_error_rate(400, np.random.SeedSequence(SEED))
        predictions, observables = compiled.decode(
            400, np.random.SeedSequence(SEED)
        )
        expected = float((predictions != observables).any(axis=1).mean())
        assert rate == expected

    def test_generator_path_rejects_engine_only_limits(self):
        """max_errors/workers/chunk_shots cannot apply to a one-batch
        Generator draw — dropping them silently would be worse."""
        compiled = make_circuit().compile(sampler="frame")
        rng = np.random.default_rng(SEED)
        with pytest.raises(ValueError, match="int seed"):
            compiled.logical_error_rate(100, rng, max_errors=5)
        with pytest.raises(ValueError, match="int seed"):
            compiled.logical_error_rate(100, rng, workers=2)
        # Explicitly passing the *default* value still conflicts
        # (sentinel, not value comparison).
        with pytest.raises(ValueError, match="chunk_shots"):
            compiled.logical_error_rate(100, rng, chunk_shots=2_000)

    def test_task_shares_strong_id_with_manual_task(self):
        circuit = make_circuit()
        from_handle = circuit.compile(decoder="mwpm").task(max_shots=500)
        manual = Task(circuit, decoder="matching", sampler="symbolic",
                      max_shots=500)
        assert from_handle.strong_id() == manual.strong_id()

    def test_collect_applies_options_policy(self):
        """ExecutionOptions.max_errors is the default early-stop policy."""
        circuit = repetition_code_memory(
            3, rounds=2,
            data_flip_probability=0.2, measure_flip_probability=0.2,
        )
        stats = circuit.compile().collect(
            ExecutionOptions(base_seed=SEED, chunk_shots=200, max_errors=10),
            max_shots=5_000,
        )
        assert stats.errors >= 10
        assert stats.shots < 5_000

    def test_collect_kwarg_overrides_patch_options(self):
        stats = make_circuit().compile().collect(
            ExecutionOptions(base_seed=SEED), max_shots=400, chunk_shots=100
        )
        assert stats.shots == 400
        assert stats.chunks == 4


class TestPackedStudyPath:
    def test_detect_packed_is_packed_detect(self):
        from repro.gf2 import bitops

        compiled = make_circuit().compile(sampler="frame")
        det, obs = compiled.detect(300, SEED)
        det_p, obs_p = compiled.detect_packed(300, SEED)
        assert np.array_equal(bitops.pack_rows(det), det_p)
        assert np.array_equal(bitops.pack_rows(obs), obs_p)

    def test_decode_packed_matches_decode_bitwise(self):
        from repro.gf2 import bitops

        compiled = make_circuit().compile(
            sampler="frame", decoder="compiled-matching"
        )
        predictions, observables = compiled.decode(300, SEED)
        packed_pred, packed_obs = compiled.decode_packed(300, SEED)
        assert np.array_equal(bitops.pack_rows(predictions), packed_pred)
        assert np.array_equal(bitops.pack_rows(observables), packed_obs)

    def test_decode_packed_requires_packed_decoder(self):
        compiled = make_circuit().compile(
            sampler="frame", decoder="matching"
        )
        with pytest.raises(ValueError, match="packed"):
            compiled.decode_packed(10, SEED)

    def test_generator_rate_unchanged_by_packed_rewire(self):
        """The packed Generator path must reproduce the historical
        unpacked estimate exactly (same stream, bitwise-equal views)."""
        compiled = make_circuit().compile(
            sampler="frame", decoder="compiled-matching"
        )
        rate = compiled.logical_error_rate(400, np.random.default_rng(SEED))
        predictions, observables = compiled.decode(
            400, np.random.default_rng(SEED)
        )
        expected = float((predictions != observables).any(axis=1).mean())
        assert rate == expected

    def test_generator_rate_decoder_none_packed(self):
        compiled = make_circuit().compile(sampler="frame", decoder="none")
        rate = compiled.logical_error_rate(400, np.random.default_rng(SEED))
        _, observables = compiled.detect(400, np.random.default_rng(SEED))
        assert rate == float(observables.any(axis=1).mean())
