"""Sweep grids, CLI parity, SweepResult operations."""

import argparse
import json

import pytest

from repro.engine import ExecutionOptions, Task, TaskStats, collect
from repro.qec import repetition_code_memory
from repro.study import Sweep, SweepResult, run

SEED = 5


def cli_default_namespace(**overrides):
    """The `repro collect` defaults, as build_sweep_tasks consumed them."""
    values = dict(
        code="both",
        distances="3,5",
        probabilities="0.005,0.01,0.02",
        rounds=3,
        decoder="compiled-matching",
        backend="symbolic",
        max_shots=10_000,
        max_errors=None,
    )
    values.update(overrides)
    return argparse.Namespace(**values)


class TestCliParity:
    def test_default_grid_strong_ids_unchanged(self):
        """Sweep() reproduces build_sweep_tasks' tasks exactly — same
        order, same strong_ids — so existing result stores resume."""
        from repro.cli import build_sweep_tasks

        with pytest.deprecated_call():
            legacy = build_sweep_tasks(cli_default_namespace())
        fresh = Sweep().tasks()
        assert len(legacy) == len(fresh) == 12  # 2 codes x 2 d x 3 p
        for old, new in zip(legacy, fresh):
            assert old.strong_id() == new.strong_id()
            assert old.metadata == new.metadata
            assert (old.decoder, old.sampler) == (new.decoder, new.sampler)

    def test_legacy_sampler_namespace_still_supported(self):
        """Pre-redesign namespaces carried the backend under `sampler`."""
        from repro.cli import build_sweep_tasks

        namespace = cli_default_namespace(backend=None)
        namespace.sampler = "frame"
        del namespace.backend
        with pytest.deprecated_call():
            legacy = build_sweep_tasks(namespace)
        assert all(task.sampler == "frame" for task in legacy)

    def test_metadata_keys_are_canonical(self):
        task = Sweep(codes="repetition", distances=3, probabilities=0.01).tasks()[0]
        assert set(task.metadata) == {"code", "distance", "p", "rounds"}


class TestGrid:
    def test_scalar_axes_normalize(self):
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.01,
                      rounds=2, decoders="mwpm", samplers="frame")
        assert len(sweep) == 1
        task = sweep.tasks()[0]
        assert task.decoder == "matching"  # canonicalized by Task
        assert task.sampler == "frame"

    def test_both_expands(self):
        sweep = Sweep(codes="both", distances=3, probabilities=0.01)
        codes = [t.metadata["code"] for t in sweep]
        assert codes == ["repetition", "surface"]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown code family"):
            Sweep(codes="steane")

    def test_grid_over_decoders_and_rounds(self):
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.01,
                      rounds=(2, 3), decoders=("matching", "lookup"))
        assert len(sweep) == 4
        seen = {(t.metadata["rounds"], t.decoder) for t in sweep}
        assert seen == {(2, "matching"), (2, "lookup"),
                        (3, "matching"), (3, "lookup")}

    def test_add_task_appends_custom_circuit(self):
        circuit = repetition_code_memory(3, rounds=1,
                                         data_flip_probability=0.3)
        sweep = Sweep(codes=(), distances=(), probabilities=())
        sweep.add_task(circuit, decoder="matching", max_shots=123,
                       metadata={"tag": "custom"})
        tasks = sweep.tasks()
        assert len(tasks) == 1
        assert tasks[0].max_shots == 123
        assert tasks[0].metadata == {"tag": "custom"}

    def test_add_task_explicit_none_max_errors_wins(self):
        """max_errors=None means "no early stop", not "inherit"."""
        circuit = repetition_code_memory(3, rounds=1,
                                         data_flip_probability=0.3)
        sweep = Sweep(codes=(), max_errors=100)
        task = sweep.add_task(circuit, max_errors=None).tasks()[0]
        assert task.max_errors is None
        inherited = sweep.add_task(circuit, metadata={"n": 2}).tasks()[1]
        assert inherited.max_errors == 100

    def test_axis_mutation_is_seen_by_tasks(self):
        """The grid is built fresh per call — tuning a public axis
        between runs must not serve a stale cached grid."""
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.01,
                      max_shots=100)
        assert sweep.tasks()[0].max_shots == 100
        sweep.max_shots = 999
        assert sweep.tasks()[0].max_shots == 999
        sweep.distances = (3, 5)
        assert len(sweep) == 2

    def test_add_task_inherits_sweep_defaults(self):
        circuit = repetition_code_memory(3, rounds=1,
                                         data_flip_probability=0.3)
        sweep = Sweep(codes=(), decoders="lookup", samplers="frame",
                      max_shots=777)
        task = sweep.add_task(circuit).tasks()[0]
        assert (task.decoder, task.sampler) == ("lookup", "frame")
        assert task.max_shots == 777


class TestCollect:
    def test_counts_match_manual_engine_path(self):
        """Sweep.collect == engine.collect on the same tasks + seed."""
        sweep = Sweep(codes="repetition", distances=(3,),
                      probabilities=(0.05, 0.1), rounds=2, max_shots=800)
        result = sweep.collect(ExecutionOptions(base_seed=SEED,
                                                chunk_shots=400))
        manual = collect(sweep.tasks(), base_seed=SEED, chunk_shots=400)
        assert len(result) == len(manual) == 2
        for a, b in zip(result, manual):
            assert (a.task_id, a.shots, a.errors) == (
                b.task_id, b.shots, b.errors
            )

    def test_collect_overrides_patch_options(self, tmp_path):
        store = tmp_path / "rows.jsonl"
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.05,
                      rounds=2, max_shots=300)
        first = sweep.collect(ExecutionOptions(base_seed=SEED),
                              store=str(store))
        assert not first[0].resumed
        again = sweep.collect(ExecutionOptions(base_seed=SEED),
                              store=str(store))
        assert again[0].resumed

    def test_default_collect_is_unseeded(self):
        """No options => fresh entropy, matching --seed's CLI default
        and logical_error_rate(seed=None); the drawn seed is recorded."""
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.05,
                      rounds=2, max_shots=200)
        first = sweep.collect()[0]
        second = sweep.collect()[0]
        assert isinstance(first.base_seed, int)
        # Two independent 128-bit entropy draws never collide.
        assert first.base_seed != second.base_seed

    def test_run_accepts_sweep_and_task_lists(self):
        sweep = Sweep(codes="repetition", distances=3, probabilities=0.05,
                      rounds=2, max_shots=300)
        from_sweep = run(sweep, ExecutionOptions(base_seed=SEED))
        from_tasks = run(sweep.tasks(), ExecutionOptions(base_seed=SEED))
        assert isinstance(from_sweep, SweepResult)
        assert from_sweep[0].errors == from_tasks[0].errors


def fake_stats(metadata, shots=1000, errors=0, **fields):
    return TaskStats(
        task_id=json.dumps(metadata, sort_keys=True),
        decoder=fields.get("decoder", "compiled-matching"),
        sampler=fields.get("sampler", "symbolic"),
        metadata=metadata,
        shots=shots,
        errors=errors,
    )


class TestSweepResult:
    def make_result(self):
        return SweepResult([
            fake_stats({"code": "repetition", "distance": 3, "p": 0.01},
                       errors=30),
            fake_stats({"code": "repetition", "distance": 5, "p": 0.01},
                       errors=10),
            fake_stats({"code": "surface", "distance": 3, "p": 0.01},
                       errors=50, decoder="matching"),
        ])

    def test_by_filters_metadata_and_fields(self):
        result = self.make_result()
        assert len(result.by(code="repetition")) == 2
        assert len(result.by(code="repetition", distance=5)) == 1
        assert len(result.by(decoder="matching")) == 1
        assert len(result.by(distance=(3, 5))) == 3
        assert len(result.by(code="steane")) == 0

    def test_by_resolves_decoder_and_sampler_aliases(self):
        """Rows store canonical names; filters spelled with registry
        aliases must still match them."""
        result = self.make_result()
        assert len(result.by(decoder="mwpm")) == 1
        assert len(result.by(decoder="cmwpm")) == 2
        assert len(result.by(sampler="symphase")) == 3
        assert len(result.by(decoder=("mwpm", "cmwpm"))) == 3
        assert len(result.by(decoder="not-a-decoder")) == 0

    def test_group_and_values(self):
        result = self.make_result()
        assert result.values("distance") == [3, 5]
        grouped = result.group("code")
        assert set(grouped) == {"repetition", "surface"}
        assert len(grouped["repetition"]) == 2

    def test_totals(self):
        assert self.make_result().totals() == (3000, 90)

    def test_table_renders_all_rows(self):
        table = self.make_result().table()
        lines = table.splitlines()
        assert len(lines) == 5  # header + rule + 3 rows
        assert "code" in lines[0] and "wilson 95% CI" in lines[0]
        assert "repetition" in table and "surface" in table

    def test_table_distinguishes_multi_decoder_rows(self):
        """Rows that differ only by decoder/sampler get that column
        automatically; explicit keys may name the stats fields too."""
        result = self.make_result()
        assert "decoder" in result.table().splitlines()[0]
        assert "matching" in result.table()
        explicit = result.table(keys=("decoder",))
        assert "compiled-matching" in explicit
        # Single-decoder results stay free of the redundant column.
        uniform = result.by(decoder="compiled-matching")
        assert "decoder" not in uniform.table().splitlines()[0]

    def test_json_roundtrip(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "rows.json"
        result.save(path)
        rows = json.loads(path.read_text())
        assert len(rows) == 3
        assert rows[0]["errors"] == 30
        assert rows[0]["metadata"]["code"] == "repetition"

    def test_slice_returns_result(self):
        result = self.make_result()
        assert isinstance(result[:2], SweepResult)
        assert isinstance(result[0], TaskStats)


class TestThresholdEstimate:
    def curve_result(self, d3_rates, d7_rates, ps=(0.01, 0.02, 0.04)):
        rows = []
        for d, rates in ((3, d3_rates), (7, d7_rates)):
            for p, rate in zip(ps, rates):
                rows.append(fake_stats(
                    {"code": "repetition", "distance": d, "p": p},
                    shots=10_000, errors=int(rate * 10_000),
                ))
        return SweepResult(rows)

    def test_crossing_is_interpolated_between_grid_points(self):
        # d=7 below d=3 at p=0.01/0.02, above at p=0.04: crossing in
        # (0.02, 0.04).
        result = self.curve_result((0.10, 0.20, 0.30), (0.02, 0.10, 0.40))
        estimate = result.threshold_estimate()
        assert estimate is not None
        assert 0.02 < estimate < 0.04

    def test_no_crossing_returns_none(self):
        result = self.curve_result((0.10, 0.20, 0.30), (0.01, 0.02, 0.03))
        assert result.threshold_estimate() is None

    def test_single_distance_returns_none(self):
        rows = [fake_stats({"distance": 3, "p": 0.01}, errors=10)]
        assert SweepResult(rows).threshold_estimate() is None

    def test_rate_curve_shape(self):
        result = self.curve_result((0.1, 0.2, 0.3), (0.02, 0.1, 0.4))
        curves = result.rate_curve()
        assert set(curves) == {3, 7}
        assert curves[3][0] == (0.01, pytest.approx(0.1))

    def test_duplicate_grid_points_raise_instead_of_mixing(self):
        """A multi-decoder sweep has two rows per (distance, p); a curve
        silently keeping the last one would be wrong."""
        result = self.curve_result((0.1, 0.2, 0.3), (0.02, 0.1, 0.4))
        doubled = SweepResult(
            list(result) + [
                fake_stats({"distance": 3, "p": 0.01}, errors=999,
                           decoder="lookup"),
            ]
        )
        with pytest.raises(ValueError, match=r"\.by\("):
            doubled.rate_curve()
        # Narrowing first works.
        curves = doubled.by(decoder="compiled-matching").rate_curve()
        assert curves[3][0] == (0.01, pytest.approx(0.1))
