"""Cross-backend equivalence: every sampler draws the same physics.

Three tiers of agreement:

* **bitwise** — ``frame`` and ``frame-interp`` share an RNG stream
  (``BackendInfo.rng_stream``), so identical seeds must give identical
  samples, detectors, and engine collection counts;
* **distributional** — ``frame`` vs ``symbolic`` detector/observable
  distributions on random Clifford+noise circuits, checked with a
  two-sample chi-square homogeneity test;
* **oracle** — both fast backends against the brute-force statevector
  simulator, and the tableau backend against ``symbolic``.
"""

import numpy as np
import pytest

from repro.backends import compile_backend
from repro.circuit import Circuit
from repro.engine import Task, collect
from repro.frame import FrameSimulator
from repro.qec import repetition_code_memory
from repro.reference.statevector import sample_records
from tests.helpers import (
    append_random_annotations,
    chi_square_two_sample,
    counts_by_record,
    random_clifford_circuit,
)


def random_annotated_circuit(seed: int, n_qubits=(2, 4)) -> Circuit:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(*n_qubits))
    circuit = random_clifford_circuit(
        rng, n, depth=14,
        p_noise=0.25, p_measure=0.1, p_reset=0.08,
        final_measure=True,
    )
    while circuit.num_measurements > 7:
        circuit = random_clifford_circuit(
            rng, n, depth=14,
            p_noise=0.25, p_measure=0.05, p_reset=0.05,
            final_measure=True,
        )
    return append_random_annotations(circuit, rng)


def detector_counts(sampler, shots, seed) -> dict[int, int]:
    detectors, observables = sampler.sample_detectors(
        shots, np.random.default_rng(seed)
    )
    return counts_by_record(np.concatenate([detectors, observables], axis=1))


class TestBitwiseFrameModes:
    @pytest.mark.parametrize("seed", range(10))
    def test_samples_identical(self, seed):
        rng = np.random.default_rng(3000 + seed)
        circuit = random_clifford_circuit(
            rng, int(rng.integers(2, 6)), depth=25,
            p_noise=0.2, p_measure=0.15, p_reset=0.1, p_feedback=0.1,
            final_measure=True,
        )
        compiled = compile_backend(circuit, "frame")
        interpreted = compile_backend(circuit, "frame-interp")
        a = compiled.sample(193, np.random.default_rng(seed))
        b = interpreted.sample(193, np.random.default_rng(seed))
        assert np.array_equal(a, b)

    def test_detectors_identical(self):
        circuit = repetition_code_memory(
            5, rounds=3, data_flip_probability=0.02,
            measure_flip_probability=0.02,
        )
        a = compile_backend(circuit, "frame").sample_detectors(
            1000, np.random.default_rng(9)
        )
        b = compile_backend(circuit, "frame-interp").sample_detectors(
            1000, np.random.default_rng(9)
        )
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_mode_survives_odd_batch_sizes(self):
        circuit = Circuit().h(0).cx(0, 1).depolarize1(0.1, 0, 1).m(0, 1)
        for shots in (1, 63, 64, 65, 129):
            a = FrameSimulator(circuit, mode="compiled").sample(
                shots, np.random.default_rng(shots)
            )
            b = FrameSimulator(circuit, mode="interpreted").sample(
                shots, np.random.default_rng(shots)
            )
            assert np.array_equal(a, b), shots


class TestEngineBitwiseAcrossBackends:
    def test_collection_counts_identical_for_shared_stream(self):
        """Backends advertising the same rng_stream must yield identical
        engine collection results for the same seed."""
        circuit = repetition_code_memory(
            3, rounds=2, data_flip_probability=0.08,
            measure_flip_probability=0.08,
        )
        results = {}
        for backend in ("frame", "frame-interp"):
            stats = collect(
                [Task(circuit, decoder="none", sampler=backend,
                      max_shots=2000)],
                base_seed=11, chunk_shots=500,
            )[0]
            results[backend] = (stats.shots, stats.errors)
        assert results["frame"] == results["frame-interp"]


class TestDistributionalAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_frame_vs_symbolic_detector_distribution(self, seed):
        circuit = random_annotated_circuit(4000 + seed)
        frame = compile_backend(circuit, "frame")
        symbolic = compile_backend(circuit, "symbolic")
        counts_frame = detector_counts(frame, 20_000, 100 + seed)
        counts_symbolic = detector_counts(symbolic, 20_000, 200 + seed)
        statistic, threshold = chi_square_two_sample(
            counts_frame, counts_symbolic
        )
        assert statistic < threshold, (
            f"frame vs symbolic detector distributions diverged: "
            f"chi2={statistic:.1f} >= {threshold:.1f}"
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_fast_backends_vs_statevector_records(self, seed):
        rng = np.random.default_rng(5000 + seed)
        circuit = random_clifford_circuit(
            rng, int(rng.integers(2, 4)), depth=12,
            p_noise=0.3, p_measure=0.08, p_reset=0.05,
            final_measure=True,
        )
        while circuit.num_measurements > 6:
            circuit = random_clifford_circuit(
                rng, 2, depth=12,
                p_noise=0.3, p_measure=0.04, p_reset=0.04,
                final_measure=True,
            )
        oracle = counts_by_record(
            sample_records(circuit, 3000, np.random.default_rng(seed))
        )
        for backend in ("frame", "symbolic"):
            fast = counts_by_record(
                compile_backend(circuit, backend).sample(
                    20_000, np.random.default_rng(300 + seed)
                )
            )
            statistic, threshold = chi_square_two_sample(fast, oracle)
            assert statistic < threshold, (
                f"{backend} vs statevector diverged: "
                f"chi2={statistic:.1f} >= {threshold:.1f}"
            )

    def test_tableau_vs_symbolic_detector_distribution(self):
        circuit = (
            Circuit()
            .h(0)
            .cx(0, 1)
            .depolarize1(0.15, 0, 1)
            .m(0, 1)
            .detector(-1, -2)
            .observable_include(0, -1)
        )
        tableau = detector_counts(
            compile_backend(circuit, "tableau"), 2500, 17
        )
        symbolic = detector_counts(
            compile_backend(circuit, "symbolic"), 25_000, 18
        )
        statistic, threshold = chi_square_two_sample(tableau, symbolic)
        assert statistic < threshold
