"""Property-based packed/unpacked equivalence across the whole registry.

The packed wire format is only allowed to change *representation*,
never a single bit: for any circuit and seed,
``sample_detectors_packed`` must equal the row-packing of
``sample_detectors``, and ``decode_batch_packed`` must equal the
row-packing of ``decode_batch`` — including the zero-shot and
all-zero-syndrome edges the hot path short-circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import available_backends, compile_backend, get_backend
from repro.decoders import available_decoders, compile_decoder, get_decoder
from repro.gf2 import bitops
from repro.qec import repetition_code_memory, surface_code_dem
from tests.helpers import append_random_annotations, random_clifford_circuit

PACKED_DECODERS = tuple(
    name for name in available_decoders() if get_decoder(name).info.packed
)


def random_annotated_circuit(seed: int):
    rng = np.random.default_rng(seed)
    circuit = random_clifford_circuit(
        rng, int(rng.integers(2, 5)), depth=12,
        p_noise=0.25, p_measure=0.12, p_reset=0.06,
        final_measure=True,
    )
    return append_random_annotations(circuit, rng, n_detectors=3)


class TestSamplerPackedEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_packed_equals_packing_unpacked_all_backends(self, seed):
        circuit = random_annotated_circuit(seed)
        for name in available_backends():
            sampler = compile_backend(circuit, name)
            shots = 8 if get_backend(name).info.per_shot_cost == "shot" else 130
            unpacked = sampler.sample_detectors(
                shots, np.random.default_rng(seed)
            )
            packed = sampler.sample_detectors_packed(
                shots, np.random.default_rng(seed)
            )
            for side, (dense, words) in enumerate(zip(unpacked, packed)):
                assert words.dtype == np.uint64, name
                assert words.shape == (
                    shots, bitops.words_for(dense.shape[1])
                ), (name, side)
                assert np.array_equal(bitops.pack_rows(dense), words), (
                    f"{name} side {side} diverged for seed {seed}"
                )

    @pytest.mark.parametrize("shots", [1, 63, 64, 65])
    def test_word_boundary_shot_counts(self, shots):
        circuit = repetition_code_memory(
            3, rounds=2, data_flip_probability=0.1,
            measure_flip_probability=0.1,
        )
        for name in ("frame", "frame-interp", "symbolic"):
            sampler = compile_backend(circuit, name)
            dense = sampler.sample_detectors(shots, np.random.default_rng(3))
            words = sampler.sample_detectors_packed(
                shots, np.random.default_rng(3)
            )
            assert np.array_equal(bitops.pack_rows(dense[0]), words[0]), name
            assert np.array_equal(bitops.pack_rows(dense[1]), words[1]), name


class TestDecoderPackedEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    @pytest.mark.parametrize("decoder_name", PACKED_DECODERS)
    def test_packed_equals_packing_unpacked(self, decoder_name, seed):
        dem = surface_code_dem(3, 2, 0.01)
        decoder = compile_decoder(dem, decoder_name)
        syndromes, _ = dem.sample(200, np.random.default_rng(seed))
        # Force the edges the packed path special-cases: all-zero rows
        # (short-circuited before dedupe) and duplicates.
        syndromes[:11] = 0
        syndromes[11:22] = syndromes[22:33]
        reference = decoder.decode_batch(syndromes)
        packed = decoder.decode_batch_packed(bitops.pack_rows(syndromes))
        assert np.array_equal(bitops.pack_rows(reference), packed)

    @pytest.mark.parametrize("decoder_name", PACKED_DECODERS)
    def test_zero_shot_edge(self, decoder_name):
        dem = surface_code_dem(3, 2, 0.01)
        decoder = compile_decoder(dem, decoder_name)
        n_words = bitops.words_for(dem.n_detectors)
        out = decoder.decode_batch_packed(np.zeros((0, n_words), np.uint64))
        assert out.shape == (0, bitops.words_for(dem.n_observables))
        assert out.dtype == np.uint64

    @pytest.mark.parametrize("decoder_name", PACKED_DECODERS)
    def test_all_zero_syndromes_edge(self, decoder_name):
        dem = surface_code_dem(3, 2, 0.01)
        decoder = compile_decoder(dem, decoder_name)
        n_words = bitops.words_for(dem.n_detectors)
        out = decoder.decode_batch_packed(np.zeros((37, n_words), np.uint64))
        assert out.shape[0] == 37 and not out.any()
        reference = decoder.decode_batch(
            np.zeros((37, dem.n_detectors), np.uint8)
        )
        assert np.array_equal(bitops.pack_rows(reference), out)

    @pytest.mark.parametrize("decoder_name", PACKED_DECODERS)
    def test_wrong_width_rejected(self, decoder_name):
        dem = surface_code_dem(3, 2, 0.01)
        decoder = compile_decoder(dem, decoder_name)
        n_words = bitops.words_for(dem.n_detectors)
        with pytest.raises(ValueError, match="packed"):
            decoder.decode_batch_packed(
                np.zeros((4, n_words + 1), np.uint64)
            )

    def test_registry_flag_matches_capability(self):
        for name in available_decoders():
            dem = surface_code_dem(3, 2, 0.01)
            decoder = compile_decoder(dem, name)
            assert get_decoder(name).info.packed == hasattr(
                decoder, "decode_batch_packed"
            ), name
