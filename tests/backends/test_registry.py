"""Tests for the sampler backend protocol and registry."""

import numpy as np
import pytest

from repro.backends import (
    BackendInfo,
    Sampler,
    available_backends,
    backend_choices,
    canonical_name,
    compile_backend,
    get_backend,
    pack_detector_samples,
    register_backend,
)
from repro.circuit import Circuit
from repro.engine import Task
from repro.qec import repetition_code_memory


def small_circuit() -> Circuit:
    return Circuit().h(0).cx(0, 1).x_error(0.1, 0).m(0, 1).detector(-1, -2)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in ("frame", "frame-interp", "symbolic", "tableau"):
            assert name in names

    def test_alias_resolution(self):
        assert canonical_name("symphase") == "symbolic"
        assert canonical_name("symbolic") == "symbolic"

    def test_choices_include_aliases(self):
        choices = backend_choices()
        assert "symphase" in choices
        assert "frame" in choices

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="frame"):
            canonical_name("quantum-supremacy")

    def test_alias_cannot_shadow_backend(self):
        info = BackendInfo(name="shadow-test", description="x")
        with pytest.raises(ValueError):
            register_backend(info, lambda c: None, aliases=("frame",))
        assert "shadow-test" not in available_backends()

    def test_alias_cannot_be_rebound_to_other_backend(self):
        info = BackendInfo(name="alias-steal-test", description="x")
        with pytest.raises(ValueError, match="symphase"):
            register_backend(info, lambda c: None, aliases=("symphase",))
        assert canonical_name("symphase") == "symbolic"

    def test_name_cannot_equal_existing_alias(self):
        info = BackendInfo(name="symphase", description="x")
        with pytest.raises(ValueError, match="alias"):
            register_backend(info, lambda c: None)
        assert canonical_name("symphase") == "symbolic"

    def test_every_builtin_satisfies_protocol(self):
        circuit = small_circuit()
        for name in available_backends():
            sampler = compile_backend(circuit, name)
            assert isinstance(sampler, Sampler), name

    def test_capability_flags(self):
        assert get_backend("frame").info.compile_once
        assert get_backend("tableau").info.oracle
        assert get_backend("tableau").info.per_shot_cost == "shot"
        assert (
            get_backend("frame").info.rng_stream
            == get_backend("frame-interp").info.rng_stream
        )
        assert (
            get_backend("frame").info.rng_stream
            != get_backend("symbolic").info.rng_stream
        )

    def test_custom_backend_registration(self):
        calls = []

        class FakeSampler:
            def sample(self, shots, rng=None):
                return np.zeros((shots, 0), dtype=np.uint8)

            def sample_detectors(self, shots, rng=None):
                empty = np.zeros((shots, 0), dtype=np.uint8)
                return empty, empty

            def sample_detectors_packed(self, shots, rng=None):
                # The protocol's packed view; the generic adapter turns
                # an unpacked implementation into one.
                return pack_detector_samples(self, shots, rng)

        def factory(circuit):
            calls.append(circuit)
            return FakeSampler()

        register_backend(
            BackendInfo(name="fake-test-backend", description="test double"),
            factory,
        )
        sampler = compile_backend(small_circuit(), "fake-test-backend")
        assert isinstance(sampler, Sampler)
        assert len(calls) == 1


class TestBackendSamplers:
    @pytest.mark.parametrize("name", ["frame", "frame-interp", "symbolic"])
    def test_sample_shapes(self, name, rng):
        sampler = compile_backend(small_circuit(), name)
        records = sampler.sample(50, rng)
        assert records.shape == (50, 2)
        detectors, observables = sampler.sample_detectors(50, rng)
        assert detectors.shape == (50, 1)
        assert observables.shape == (50, 0)

    def test_tableau_sample_shapes(self, rng):
        sampler = compile_backend(small_circuit(), "tableau")
        records = sampler.sample(20, rng)
        assert records.shape == (20, 2)
        detectors, _ = sampler.sample_detectors(20, rng)
        assert detectors.shape == (20, 1)

    @pytest.mark.parametrize("name", ["frame", "symbolic", "tableau"])
    def test_zero_shots_rejected(self, name, rng):
        sampler = compile_backend(small_circuit(), name)
        with pytest.raises(ValueError):
            sampler.sample(0, rng)


class TestTaskIntegration:
    def make_task(self, **kwargs):
        circuit = repetition_code_memory(
            3, rounds=2, data_flip_probability=0.05,
            measure_flip_probability=0.05,
        )
        return Task(circuit, **kwargs)

    def test_alias_canonicalized(self):
        assert self.make_task(sampler="symphase").sampler == "symbolic"

    def test_alias_shares_strong_id(self):
        a = self.make_task(sampler="symphase")
        b = self.make_task(sampler="symbolic")
        assert a.strong_id() == b.strong_id()

    def test_every_backend_accepted(self):
        for name in available_backends():
            assert self.make_task(sampler=name).sampler == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            self.make_task(sampler="quantum")
