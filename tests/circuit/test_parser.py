"""Tests for the circuit text parser."""

import pytest

from repro.circuit import Circuit, PauliTarget, RecTarget, parse_circuit
from repro.circuit.parser import CircuitParseError


class TestBasicParsing:
    def test_simple_gates(self):
        c = parse_circuit("H 0\nCX 0 1\nM 0 1")
        assert len(c.entries) == 3
        assert c.entries[0].name == "H"
        assert c.entries[1].targets == (0, 1)

    def test_aliases_canonicalized(self):
        c = parse_circuit("CNOT 0 1\nMZ 2")
        assert c.entries[0].name == "CX"
        assert c.entries[1].name == "M"

    def test_arguments(self):
        c = parse_circuit("X_ERROR(0.25) 0 1 2")
        assert c.entries[0].args == (0.25,)
        assert c.entries[0].targets == (0, 1, 2)

    def test_multi_arguments_with_commas(self):
        c = parse_circuit("PAULI_CHANNEL_1(0.1, 0.2, 0.3) 0")
        assert c.entries[0].args == (0.1, 0.2, 0.3)

    def test_comments_and_blank_lines(self):
        c = parse_circuit("# header\n\nH 0  # trailing\n\n")
        assert len(c.entries) == 1

    def test_case_insensitive_names(self):
        c = parse_circuit("h 0\ncx 0 1")
        assert c.entries[0].name == "H"


class TestTargets:
    def test_rec_targets(self):
        c = parse_circuit("M 0 1\nDETECTOR rec[-1] rec[-2]")
        detector = c.entries[1]
        assert detector.targets == (RecTarget(-1), RecTarget(-2))

    def test_pauli_targets(self):
        c = parse_circuit("E(0.1) X0 Y2 Z5")
        assert c.entries[0].targets == (
            PauliTarget("X", 0), PauliTarget("Y", 2), PauliTarget("Z", 5)
        )

    def test_observable_include(self):
        c = parse_circuit("M 0\nOBSERVABLE_INCLUDE(3) rec[-1]")
        assert c.entries[1].args == (3.0,)

    def test_bad_target(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("H zero")

    def test_positive_rec_rejected(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("DETECTOR rec[3]")


class TestRepeatBlocks:
    def test_basic_repeat(self):
        c = parse_circuit("REPEAT 3 {\n  H 0\n  M 0\n}")
        flattened = list(c.flattened())
        assert len(flattened) == 6
        assert c.num_measurements == 3

    def test_nested_repeat(self):
        c = parse_circuit(
            "REPEAT 2 {\n  X 0\n  REPEAT 3 {\n    M 0\n  }\n}"
        )
        assert c.num_measurements == 6

    def test_unclosed_repeat(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("REPEAT 2 {\nH 0")

    def test_unmatched_close(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("}")


class TestErrors:
    def test_unknown_gate(self):
        with pytest.raises(CircuitParseError) as excinfo:
            parse_circuit("H 0\nFOO 1")
        assert excinfo.value.line_number == 2

    def test_bad_probability(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("X_ERROR(1.5) 0")

    def test_odd_two_qubit_targets(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("CX 0 1 2")

    def test_repeated_qubit_in_pair(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("CX 0 0")

    def test_missing_argument(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("X_ERROR 0")


class TestRoundTrip:
    def test_text_roundtrip(self):
        text = "\n".join([
            "H 0",
            "CX 0 1",
            "DEPOLARIZE1(0.125) 0 1",
            "REPEAT 5 {",
            "    MR 1",
            "    DETECTOR rec[-1]",
            "}",
            "M 0 1",
            "OBSERVABLE_INCLUDE(0) rec[-2]",
        ])
        circuit = parse_circuit(text)
        assert parse_circuit(circuit.to_text()) == circuit

    def test_from_text_classmethod(self):
        assert Circuit.from_text("H 0") == parse_circuit("H 0")
