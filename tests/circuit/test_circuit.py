"""Tests for the Circuit container, builders and statistics."""

import pytest

from repro.circuit import Circuit, RecTarget
from repro.circuit.instructions import Instruction, RepeatBlock


class TestBuilders:
    def test_shorthand_methods_chain(self):
        c = Circuit().h(0).cx(0, 1).m(0, 1)
        assert [e.name for e in c.entries] == ["H", "CX", "M"]

    def test_append_scalar_arg(self):
        c = Circuit().append("X_ERROR", [0], 0.1)
        assert c.entries[0].args == (0.1,)

    def test_append_validates(self):
        with pytest.raises(ValueError):
            Circuit().append("CX", [0])

    def test_detector_builder(self):
        c = Circuit().m(0).detector(-1)
        assert c.entries[1].targets == (RecTarget(-1),)

    def test_observable_builder(self):
        c = Circuit().m(0).observable_include(2, -1)
        assert c.entries[1].args == (2.0,)


class TestComposition:
    def test_add(self):
        c = Circuit().h(0) + Circuit().m(0)
        assert len(c.entries) == 2

    def test_iadd(self):
        c = Circuit().h(0)
        c += Circuit().m(0)
        assert len(c.entries) == 2

    def test_mul_wraps_in_repeat(self):
        c = Circuit().mr(0) * 4
        assert isinstance(c.entries[0], RepeatBlock)
        assert c.num_measurements == 4

    def test_mul_one_copies(self):
        base = Circuit().h(0)
        c = base * 1
        c.h(1)
        assert len(base.entries) == 1

    def test_mul_zero_rejected(self):
        with pytest.raises(ValueError):
            Circuit().h(0) * 0

    def test_copy_deep_for_repeats(self):
        inner = Circuit().m(0)
        c = Circuit().append_repeat(2, inner)
        copied = c.copy()
        copied.entries[0].body.m(1)
        assert inner.num_measurements == 1


class TestStatistics:
    def test_n_qubits(self):
        assert Circuit().cx(3, 7).n_qubits == 8
        assert Circuit().n_qubits == 0

    def test_n_qubits_sees_repeat_bodies(self):
        c = Circuit().append_repeat(2, Circuit().h(9))
        assert c.n_qubits == 10

    def test_num_measurements_with_repeats(self):
        c = Circuit().m(0, 1)
        c.append_repeat(3, Circuit().mr(2))
        assert c.num_measurements == 5

    def test_num_detectors_and_observables(self):
        c = Circuit().m(0).detector(-1).observable_include(1, -1)
        assert c.num_detectors == 1
        assert c.num_observables == 2  # indices 0 and 1 exist

    def test_count_operations(self):
        c = (
            Circuit()
            .h(0, 1)
            .cx(0, 1, 1, 2)
            .depolarize1(0.1, 0, 1)
            .mr(0)
            .m(1, 2)
        )
        stats = c.count_operations()
        assert stats["gates"] == 4  # 2 H + 2 CX pairs
        assert stats["noise_sites"] == 2
        assert stats["measurements"] == 3
        assert stats["resets"] == 1

    def test_flattened_order(self):
        c = Circuit().h(0)
        c.append_repeat(2, Circuit().x(0).m(0))
        names = [i.name for i in c.flattened()]
        assert names == ["H", "X", "M", "X", "M"]


class TestInstructionValidation:
    def test_detector_requires_rec(self):
        with pytest.raises(ValueError):
            Instruction("DETECTOR", (3,)).validate()

    def test_correlated_error_requires_pauli(self):
        with pytest.raises(ValueError):
            Instruction("CORRELATED_ERROR", (0, 1), (0.1,)).validate()

    def test_noise_probability_bounds(self):
        with pytest.raises(ValueError):
            Instruction("PAULI_CHANNEL_1", (0,), (0.5, 0.5, 0.5)).validate()

    def test_str_formatting(self):
        inst = Instruction("X_ERROR", (0, 2), (0.5,))
        assert str(inst) == "X_ERROR(0.5) 0 2"

    def test_repeat_count_positive(self):
        with pytest.raises(ValueError):
            RepeatBlock(0, Circuit())


class TestFingerprint:
    def build(self):
        return (
            Circuit()
            .h(0)
            .cx(0, 1)
            .x_error(0.25, 0)
            .m(0, 1)
            .detector(-1, -2)
            .observable_include(0, -1)
        )

    def test_stable_across_reconstruction(self):
        assert self.build().fingerprint() == self.build().fingerprint()

    def test_parse_roundtrip_preserves_fingerprint(self):
        original = self.build()
        reparsed = Circuit.from_text(original.to_text())
        assert reparsed.fingerprint() == original.fingerprint()
        assert reparsed == original

    def test_regrouped_but_identical_stream_shares_fingerprint(self):
        # REPEAT structure is a serialization detail: the unrolled
        # circuit executes the identical instruction stream.
        body = Circuit().x(0).m(0)
        repeated = Circuit().h(0)
        repeated.append_repeat(3, body)
        unrolled = Circuit().h(0)
        for _ in range(3):
            unrolled += body.copy()
        assert repeated.to_text() != unrolled.to_text()
        assert repeated.fingerprint() == unrolled.fingerprint()

    def test_cosmetic_annotations_ignored(self):
        plain = self.build()
        decorated = Circuit().append("QUBIT_COORDS", [0], (0.0, 1.0))
        decorated += plain
        decorated.tick()
        assert decorated.fingerprint() == plain.fingerprint()

    def test_differing_gate_changes_fingerprint(self):
        assert self.build().fingerprint() != (
            Circuit().h(0).cz(0, 1).x_error(0.25, 0).m(0, 1)
            .detector(-1, -2).observable_include(0, -1)
        ).fingerprint()

    def test_differing_noise_strength_changes_fingerprint(self):
        a = Circuit().x_error(0.25, 0).m(0)
        b = Circuit().x_error(0.30, 0).m(0)
        assert a.fingerprint() != b.fingerprint()

    def test_reordered_instructions_change_fingerprint(self):
        a = Circuit().h(0).x(1).m(0, 1)
        b = Circuit().x(1).h(0).m(0, 1)
        assert a.fingerprint() != b.fingerprint()

    def test_equality_tracks_content(self):
        assert self.build() == self.build()
        assert self.build() != Circuit().h(0)
        assert Circuit() != "not a circuit"
