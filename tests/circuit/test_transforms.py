"""Tests for circuit transformation passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.circuit.transforms import (
    depth,
    inverse_circuit,
    inverse_gate_name,
    moments,
    remap_qubits,
    without_noise,
)
from repro.tableau import CliffordMap


class TestInverseGateNames:
    @pytest.mark.parametrize("name,expected", [
        ("H", "H"),
        ("X", "X"),
        ("CX", "CX"),
        ("SWAP", "SWAP"),
        ("S", "S_DAG"),
        ("SQRT_X", "SQRT_X_DAG"),
        ("ISWAP", "ISWAP_DAG"),
        ("C_XYZ", "C_ZYX"),
        ("SQRT_ZZ", "SQRT_ZZ_DAG"),
    ])
    def test_known_inverses(self, name, expected):
        assert inverse_gate_name(name) == expected

    def test_involution(self):
        for name in ("S", "SQRT_Y", "C_XYZ", "ISWAP"):
            assert inverse_gate_name(inverse_gate_name(name)) == name


class TestInverseCircuit:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_circuit_times_inverse_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit()
        for _ in range(12):
            if rng.random() < 0.35:
                a, b = rng.choice(3, 2, replace=False)
                circuit.append(
                    str(rng.choice(["CX", "CZ", "ISWAP", "SQRT_XX"])),
                    [int(a), int(b)],
                )
            else:
                circuit.append(
                    str(rng.choice(["H", "S", "SQRT_X", "C_XYZ", "Y"])),
                    [int(rng.integers(3))],
                )
        total = circuit + inverse_circuit(circuit)
        assert CliffordMap.from_circuit(total, 3) == CliffordMap.identity(3)

    def test_repeat_blocks_inverted(self):
        circuit = Circuit().append_repeat(3, Circuit().s(0))
        total = circuit + inverse_circuit(circuit)
        assert CliffordMap.from_circuit(total, 1) == CliffordMap.identity(1)

    def test_measurement_rejected(self):
        with pytest.raises(ValueError):
            inverse_circuit(Circuit().m(0))

    def test_annotations_dropped(self):
        circuit = Circuit().h(0).tick()
        assert [e.name for e in inverse_circuit(circuit).entries] == ["H"]

    def test_pair_order_reversed(self):
        circuit = Circuit().cx(0, 1, 1, 2)
        inv = inverse_circuit(circuit)
        assert inv.entries[0].targets == (1, 2, 0, 1)


class TestWithoutNoise:
    def test_strips_all_noise(self):
        circuit = (
            Circuit().h(0).depolarize1(0.1, 0).x_error(0.2, 0).m(0)
        )
        clean = without_noise(circuit)
        assert [e.name for e in clean.entries] == ["H", "M"]

    def test_records_preserved(self):
        circuit = Circuit().x_error(0.3, 0).mr(0).detector(-1)
        clean = without_noise(circuit)
        assert clean.num_measurements == circuit.num_measurements
        assert clean.num_detectors == circuit.num_detectors

    def test_inside_repeat(self):
        circuit = Circuit().append_repeat(
            2, Circuit().depolarize1(0.1, 0).m(0)
        )
        assert without_noise(circuit).count_operations()["noise_sites"] == 0


class TestRemapQubits:
    def test_simple_swap(self):
        circuit = Circuit().cx(0, 1).m(0)
        remapped = remap_qubits(circuit, {0: 1, 1: 0})
        assert remapped.entries[0].targets == (1, 0)
        assert remapped.entries[1].targets == (1,)

    def test_pauli_targets_remapped(self):
        circuit = Circuit.from_text("E(0.1) X0 Z1")
        remapped = remap_qubits(circuit, {0: 5})
        assert str(remapped.entries[0].targets[0]) == "X5"

    def test_rec_targets_untouched(self):
        circuit = Circuit().m(0).detector(-1)
        remapped = remap_qubits(circuit, {0: 3})
        assert str(remapped.entries[1].targets[0]) == "rec[-1]"

    def test_semantics_preserved(self):
        from repro.core import compile_sampler
        circuit = Circuit().x(0).cx(0, 1).m(0, 1)
        remapped = remap_qubits(circuit, {0: 1, 1: 0})
        a = compile_sampler(circuit).sample(10, np.random.default_rng(0))
        b = compile_sampler(remapped).sample(10, np.random.default_rng(0))
        assert np.array_equal(a, b)  # record order follows targets


class TestMoments:
    def test_parallel_gates_share_layer(self):
        circuit = Circuit().h(0).h(1).cx(0, 1)
        layers = moments(circuit)
        assert len(layers) == 2
        assert len(layers[0]) == 2

    def test_depth_of_serial_chain(self):
        circuit = Circuit().h(0).s(0).h(0)
        assert depth(circuit) == 3

    def test_feedback_waits_for_measurement(self):
        circuit = Circuit.from_text("M 0\nCX rec[-1] 1")
        layers = moments(circuit)
        assert len(layers) == 2
        assert layers[1][0].name == "CX"

    def test_repeat_expanded(self):
        circuit = Circuit().append_repeat(3, Circuit().h(0))
        assert depth(circuit) == 3
