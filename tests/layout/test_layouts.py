"""Tests for the tableau data layouts (paper §4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import RowMajorLayout, TiledLayout, make_layout

_KINDS = ("chp", "stim8", "symphase512")


class TestRoundTrip:
    @pytest.mark.parametrize("kind", _KINDS)
    def test_load_to_dense(self, kind, rng):
        bits = (rng.random((100, 100)) < 0.5).astype(np.uint8)
        layout = make_layout(kind, 100)
        layout.load_dense(bits)
        assert np.array_equal(layout.to_dense(), bits)

    @pytest.mark.parametrize("kind", _KINDS)
    def test_larger_than_one_block(self, kind, rng):
        bits = (rng.random((600, 600)) < 0.5).astype(np.uint8)
        layout = make_layout(kind, 600)
        layout.load_dense(bits)
        assert np.array_equal(layout.to_dense(), bits)


class TestOperationEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.sampled_from([64, 130, 530]))
    def test_all_layouts_agree_on_random_op_sequences(self, seed, n):
        local = np.random.default_rng(seed)
        bits = (local.random((n, n)) < 0.5).astype(np.uint8)
        ops = []
        for _ in range(15):
            kind = "row" if local.random() < 0.5 else "col"
            a, b = local.choice(n, 2, replace=False)
            ops.append((kind, int(a), int(b)))

        results = []
        for kind in _KINDS:
            layout = make_layout(kind, n)
            layout.load_dense(bits)
            for op, a, b in ops:
                if op == "row":
                    layout.set_mode("measure")
                    layout.row_xor(a, b)
                else:
                    layout.set_mode("gate")
                    layout.column_xor(a, b)
            results.append(layout.to_dense())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_reference_semantics(self, rng):
        n = 96
        bits = (rng.random((n, n)) < 0.5).astype(np.uint8)
        expected = bits.copy()
        expected[7] ^= expected[3]
        expected[:, 11] ^= expected[:, 90]

        layout = make_layout("symphase512", n)
        layout.load_dense(bits)
        layout.set_mode("measure")
        layout.row_xor(3, 7)
        layout.set_mode("gate")
        layout.column_xor(90, 11)
        assert np.array_equal(layout.to_dense(), expected)


class TestModeDiscipline:
    def test_tiled_rejects_wrong_mode(self):
        layout = TiledLayout(100, tile=64)
        layout.set_mode("measure")
        with pytest.raises(RuntimeError):
            layout.column_xor(0, 1)
        layout.set_mode("gate")
        with pytest.raises(RuntimeError):
            layout.row_xor(0, 1)

    def test_row_major_any_mode(self):
        layout = RowMajorLayout(64)
        layout.set_mode("gate")
        layout.column_xor(0, 1)
        layout.row_xor(0, 1)  # no mode restriction

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RowMajorLayout(8).set_mode("diagonal")
        with pytest.raises(ValueError):
            TiledLayout(8, tile=64).set_mode("diagonal")

    def test_mode_switch_idempotent(self, rng):
        layout = TiledLayout(200, tile=64)
        bits = (rng.random((200, 200)) < 0.5).astype(np.uint8)
        layout.load_dense(bits)
        layout.set_mode("measure")
        layout.set_mode("measure")
        assert np.array_equal(layout.to_dense(), bits)


class TestConstruction:
    def test_tile_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            TiledLayout(100, tile=100)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_layout("columnar", 64)

    def test_random_factory(self, rng):
        layout = RowMajorLayout.random(128, rng)
        density = layout.to_dense().mean()
        assert 0.4 < density < 0.6
