"""End-to-end cross-validation of the three samplers.

The symbolic sampler (paper's Algorithm 1), the Pauli-frame baseline
(Stim's algorithm) and the dense statevector oracle must agree as
*distributions over whole measurement records* on random circuits with
noise, measurement-basis changes and resets.
"""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import compile_sampler
from repro.frame import FrameSimulator
from repro.reference.statevector import sample_records
from tests.helpers import (
    random_clifford_circuit,
    record_distribution,
    total_variation,
)

# TV budget: statevector uses only 3000 shots; for <= 16 outcomes the
# expected sampling TV is ~sqrt(16 / 3000) / 2 ~ 0.04.  0.08 gives solid
# margin while still catching real bugs (wrong correlations shift TV by
# 0.25+).
_TV_BUDGET = 0.08
_FAST_SHOTS = 20000
_ORACLE_SHOTS = 3000


def _compare_all(circuit: Circuit, seed: int) -> None:
    symbolic = compile_sampler(circuit).sample(
        _FAST_SHOTS, np.random.default_rng(seed)
    )
    frame = FrameSimulator(circuit).sample(
        _FAST_SHOTS, np.random.default_rng(seed + 1)
    )
    oracle = sample_records(circuit, _ORACLE_SHOTS, np.random.default_rng(seed + 2))

    d_sym = record_distribution(symbolic)
    d_frame = record_distribution(frame)
    d_oracle = record_distribution(oracle)

    assert total_variation(d_sym, d_frame) < _TV_BUDGET / 2, (
        f"symbolic vs frame diverged: {d_sym} vs {d_frame}"
    )
    assert total_variation(d_sym, d_oracle) < _TV_BUDGET, (
        f"symbolic vs statevector diverged: {d_sym} vs {d_oracle}"
    )
    assert total_variation(d_frame, d_oracle) < _TV_BUDGET, (
        f"frame vs statevector diverged: {d_frame} vs {d_oracle}"
    )


class TestHandPickedCircuits:
    def test_noisy_bell(self):
        _compare_all(Circuit.from_text(
            "H 0\nCNOT 0 1\nDEPOLARIZE1(0.2) 0 1\nM 0 1"
        ), seed=10)

    def test_basis_changes(self):
        _compare_all(Circuit.from_text(
            "H 0\nS 0\nCX 0 1\nH_YZ 1\nMY 0\nMX 1\nM 0 1"
        ), seed=11)

    def test_mid_circuit_measure_and_feedforwardless_reuse(self):
        _compare_all(Circuit.from_text(
            "H 0\nCX 0 1\nM 0\nH 0\nCX 1 0\nX_ERROR(0.3) 0\nM 0 1"
        ), seed=12)

    def test_resets(self):
        _compare_all(Circuit.from_text(
            "H 0\nCX 0 1\nMR 0\nX_ERROR(0.25) 0\nCX 0 1\nM 0 1"
        ), seed=13)

    def test_two_qubit_noise(self):
        _compare_all(Circuit.from_text(
            "H 0\nDEPOLARIZE2(0.4) 0 1\nCZ 0 1\nH 1\nM 0 1"
        ), seed=14)

    def test_pauli_channel_2(self):
        args = ",".join(["0.02"] * 15)
        _compare_all(Circuit.from_text(
            f"H 0\nCX 0 1\nPAULI_CHANNEL_2({args}) 0 1\nM 0 1"
        ), seed=15)

    def test_correlated_error(self):
        _compare_all(Circuit.from_text(
            "H 0\nE(0.35) X0 Z1\nCX 0 1\nM 0 1"
        ), seed=16)


class TestRandomCircuits:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_noisy_circuits(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(2, 4))
        circuit = random_clifford_circuit(
            rng, n, depth=14,
            p_noise=0.25, p_measure=0.1, p_reset=0.08,
            final_measure=True,
        )
        # Cap the record width so exact distribution comparison is viable.
        while circuit.num_measurements > 7:
            circuit = random_clifford_circuit(
                rng, n, depth=14,
                p_noise=0.25, p_measure=0.05, p_reset=0.05,
                final_measure=True,
            )
        _compare_all(circuit, seed=2000 + seed)
