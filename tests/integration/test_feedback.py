"""Tests for classically-controlled Paulis (the paper's §6 extension).

The flagship case is quantum teleportation: its correction step is
feed-forward, so if `CX rec[-k] q` / `CZ rec[-k] q` are right in every
simulator, a teleported state must arrive intact in all of them.
"""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.parser import CircuitParseError, parse_circuit
from repro.core import (
    SymPhaseSimulator,
    compile_sampler,
    concrete_replay,
    random_assignment,
    substituted_record,
)
from repro.frame import FrameSimulator
from repro.reference.statevector import sample_records
from repro.tableau import TableauSimulator


def teleport_circuit(prepare: str) -> Circuit:
    """Teleport the state ``prepare`` builds on qubit 0 onto qubit 2,
    then measure qubit 2 in the basis that makes the outcome 0."""
    text = f"""
        {prepare}
        H 1
        CX 1 2
        CX 0 1
        H 0
        M 0 1
        CX rec[-1] 2
        CZ rec[-2] 2
    """
    return Circuit.from_text(text)


class TestParsing:
    def test_rec_control_parses(self):
        c = parse_circuit("M 0\nCX rec[-1] 1")
        assert len(c.entries) == 2

    def test_mixed_pairs(self):
        c = parse_circuit("M 0\nCX rec[-1] 1 0 2")
        c.entries[1].validate()

    def test_rec_control_rejected_for_swap(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("M 0\nSWAP rec[-1] 1")

    def test_rec_as_second_target_rejected(self):
        with pytest.raises(CircuitParseError):
            parse_circuit("M 0\nCX 1 rec[-1]")


class TestTeleportation:
    """Teleporting |1> (prep X) means qubit 2 must read 1 in Z;
    teleporting |+> (prep H) means qubit 2 must read 0 in X."""

    @pytest.mark.parametrize("prep,basis,expect", [
        ("X 0", "M", 1),       # |1>  -> Z-measurement reads 1
        ("H 0", "MX", 0),      # |+>  -> X-measurement reads 0
        ("X 0\nH 0", "MX", 1), # |->  -> X-measurement reads 1
        ("", "M", 0),          # |0>  -> Z-measurement reads 0
    ])
    def test_symbolic_sampler(self, prep, basis, expect):
        circuit = teleport_circuit(prep)
        circuit.append(basis, [2])
        records = compile_sampler(circuit).sample(
            2000, np.random.default_rng(0)
        )
        # Bell-measurement outcomes are uniform coins...
        assert 0.45 < records[:, 0].mean() < 0.55
        assert 0.45 < records[:, 1].mean() < 0.55
        # ...but the teleported qubit is exact in every shot.
        assert (records[:, 2] == expect).all()

    @pytest.mark.parametrize("prep,basis,expect", [
        ("X 0", "M", 1),
        ("H 0", "MX", 0),
    ])
    def test_frame_sampler(self, prep, basis, expect):
        circuit = teleport_circuit(prep)
        circuit.append(basis, [2])
        records = FrameSimulator(circuit).sample(
            2000, np.random.default_rng(1)
        )
        assert (records[:, 2] == expect).all()

    @pytest.mark.parametrize("prep,basis,expect", [
        ("X 0", "M", 1),
        ("H 0", "MX", 0),
    ])
    def test_tableau_simulator(self, prep, basis, expect):
        circuit = teleport_circuit(prep)
        circuit.append(basis, [2])
        for trial in range(20):
            sim = TableauSimulator(3, np.random.default_rng(100 + trial))
            record = sim.run(circuit)
            assert record[2] == expect

    @pytest.mark.parametrize("prep,basis,expect", [
        ("X 0", "M", 1),
        ("H 0", "MX", 0),
    ])
    def test_statevector(self, prep, basis, expect):
        circuit = teleport_circuit(prep)
        circuit.append(basis, [2])
        records = sample_records(circuit, 40, np.random.default_rng(2))
        assert (records[:, 2] == expect).all()


class TestFeedbackSemantics:
    def test_cz_feedback_invisible_in_z_basis(self):
        c = Circuit.from_text("H 0\nM 0\nCZ rec[-1] 1\nM 1")
        records = compile_sampler(c).sample(500, np.random.default_rng(0))
        assert not records[:, 1].any()

    def test_cx_feedback_copies_coin(self):
        c = Circuit.from_text("H 0\nM 0\nCX rec[-1] 1\nM 1")
        records = compile_sampler(c).sample(5000, np.random.default_rng(0))
        assert np.array_equal(records[:, 0], records[:, 1])
        assert 0.45 < records[:, 0].mean() < 0.55

    def test_cy_feedback_flips_both_bases(self):
        c = Circuit.from_text("X 0\nM 0\nCY rec[-1] 1\nM 1")
        records = compile_sampler(c).sample(100, np.random.default_rng(0))
        assert records[:, 1].all()

    def test_feedback_on_noisy_record(self):
        # The feedback exponent carries the fault symbol with it.
        c = Circuit.from_text("X_ERROR(0.4) 0\nM 0\nCX rec[-1] 1\nM 1")
        records = compile_sampler(c).sample(40000, np.random.default_rng(0))
        assert np.array_equal(records[:, 0], records[:, 1])
        assert abs(records[:, 0].mean() - 0.4) < 0.01

    def test_deep_lookback(self):
        c = Circuit.from_text("X 0\nM 0\nH 1\nM 1\nCX rec[-2] 2\nM 2")
        records = compile_sampler(c).sample(200, np.random.default_rng(0))
        assert records[:, 2].all()

    def test_lookback_too_deep_rejected(self):
        c = Circuit.from_text("M 0\nCX rec[-2] 1")
        with pytest.raises(ValueError):
            SymPhaseSimulator.from_circuit(c)


class TestFeedbackLinearity:
    def test_substitution_equals_replay(self):
        rng = np.random.default_rng(5)
        c = Circuit.from_text("""
            H 0
            CX 0 1
            X_ERROR(0.5) 0
            M 0
            CX rec[-1] 1
            DEPOLARIZE1(0.3) 1
            M 1
            CZ rec[-1] 0
            H 0
            M 0
        """)
        sim = SymPhaseSimulator.from_circuit(c)
        for _ in range(12):
            assignment = random_assignment(sim, rng)
            assert np.array_equal(
                substituted_record(sim, assignment),
                concrete_replay(c, sim, assignment),
            )

    def test_teleportation_distribution_cross_check(self):
        from tests.helpers import record_distribution, total_variation

        circuit = teleport_circuit("H 0\nS 0")  # teleport |+i>
        circuit.append("MY", [2])
        sym = compile_sampler(circuit).sample(20000, np.random.default_rng(0))
        frame = FrameSimulator(circuit).sample(20000, np.random.default_rng(1))
        oracle = sample_records(circuit, 2000, np.random.default_rng(2))
        assert total_variation(
            record_distribution(sym), record_distribution(frame)
        ) < 0.04
        assert total_variation(
            record_distribution(sym), record_distribution(oracle)
        ) < 0.08
