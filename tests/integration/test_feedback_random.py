"""Distribution-level agreement of all samplers on random circuits that
include classically-controlled Paulis."""

import numpy as np
import pytest

from repro.core import compile_sampler
from repro.frame import FrameSimulator
from repro.reference.statevector import sample_records
from tests.helpers import (
    random_clifford_circuit,
    record_distribution,
    total_variation,
)


@pytest.mark.parametrize("seed", range(5))
def test_random_feedback_circuits_agree(seed):
    rng = np.random.default_rng(4000 + seed)
    n = int(rng.integers(2, 4))
    circuit = None
    while circuit is None or circuit.num_measurements > 7:
        circuit = random_clifford_circuit(
            rng, n, depth=16,
            p_noise=0.15, p_measure=0.15, p_reset=0.05, p_feedback=0.15,
            final_measure=True,
        )
    sym = compile_sampler(circuit).sample(20000, np.random.default_rng(seed))
    frame = FrameSimulator(circuit).sample(
        20000, np.random.default_rng(seed + 1)
    )
    oracle = sample_records(circuit, 2500, np.random.default_rng(seed + 2))

    d_sym = record_distribution(sym)
    d_frame = record_distribution(frame)
    d_oracle = record_distribution(oracle)
    assert total_variation(d_sym, d_frame) < 0.04
    assert total_variation(d_sym, d_oracle) < 0.09
