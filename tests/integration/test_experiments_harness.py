"""Smoke tests for the figure-regeneration harness (tiny sizes)."""

from repro.experiments import run_fig2, run_fig3, run_sparse, run_table1


class TestFig3:
    def test_fig3a_rows(self, capsys):
        rows = run_fig3("fig3a", sizes=[8, 12], shots=200)
        assert len(rows) == 2
        assert rows[0]["n"] == 8
        for row in rows:
            for key in ("init_symphase", "init_frame",
                        "sample_symphase", "sample_frame"):
                assert row[key] > 0
        assert "fig3a" in capsys.readouterr().out

    def test_fig3c_has_noise(self, capsys):
        rows = run_fig3("fig3c", sizes=[8], shots=100)
        assert rows[0]["noise_sites"] > 0

    def test_unknown_variant(self):
        import pytest
        with pytest.raises(ValueError):
            run_fig3("fig3z")


class TestTable1:
    def test_sweeps(self, capsys):
        out = run_table1(
            n_qubits=8, layer_sweep=[4, 8], shot_sweep=[100, 200]
        )
        assert len(out["gate_sweep"]) == 2
        assert len(out["shot_sweep"]) == 2
        # Gate count must grow along the layer sweep.
        gates = [r["gates"] for r in out["gate_sweep"]]
        assert gates[1] > gates[0]


class TestFig2:
    def test_layout_rows(self, capsys):
        rows = run_fig2(n=512, n_ops=16)
        assert {r["layout"] for r in rows} == {"chp", "stim8", "symphase512"}
        for row in rows:
            assert row["column_ops"] >= 0
            assert row["row_ops"] >= 0


class TestSparse:
    def test_sparse_result(self, capsys):
        result = run_sparse(distance=3, rounds=2, shots=500)
        assert result["auto"] == "sparse"
        assert result["avg_support"] > 0
