"""Tests for the Fig. 3 workload generators."""

import numpy as np
import pytest

from repro.core import compile_sampler
from repro.workloads import (
    fig3a_circuit,
    fig3b_circuit,
    fig3c_circuit,
    layered_random_circuit,
)


class TestStructure:
    def test_reproducible_with_seed(self):
        a = layered_random_circuit(10, seed=7)
        b = layered_random_circuit(10, seed=7)
        assert a.to_text() == b.to_text()

    def test_different_seeds_differ(self):
        assert (
            layered_random_circuit(10, seed=1).to_text()
            != layered_random_circuit(10, seed=2).to_text()
        )

    def test_layer_count_defaults_to_n(self):
        c = layered_random_circuit(12, seed=0)
        ticks = sum(1 for i in c.flattened() if i.name == "TICK")
        assert ticks == 12

    def test_final_measurement_covers_all_qubits(self):
        n = 10
        c = layered_random_circuit(n, n_layers=3, seed=0)
        final = c.entries[-1]
        assert final.name == "M"
        assert final.targets == tuple(range(n))

    def test_measure_fraction(self):
        n, layers = 40, 5
        c = layered_random_circuit(n, n_layers=layers, measure_fraction=0.05,
                                   seed=0)
        # 5% of 40 = 2 per layer + final n.
        assert c.num_measurements == layers * 2 + n

    def test_cnot_pair_count_capped(self):
        c = layered_random_circuit(4, n_layers=2, cnot_pairs_per_layer=100,
                                   seed=0)
        for inst in c.flattened():
            if inst.name == "CX":
                assert len(inst.targets) <= 4

    def test_too_few_qubits(self):
        with pytest.raises(ValueError):
            layered_random_circuit(1)


class TestVariants:
    def test_fig3a_has_no_noise(self):
        c = fig3a_circuit(20, seed=0)
        assert c.count_operations()["noise_sites"] == 0

    def test_fig3b_denser_than_3a(self):
        a = fig3a_circuit(30, seed=0).count_operations()["gates"]
        b = fig3b_circuit(30, seed=0).count_operations()["gates"]
        assert b > a

    def test_fig3c_noise_sites(self):
        c = fig3c_circuit(20, seed=0)
        # One DEPOLARIZE1 site per qubit per layer.
        assert c.count_operations()["noise_sites"] == 20 * 20

    def test_circuits_simulate_cleanly(self):
        for builder in (fig3a_circuit, fig3b_circuit, fig3c_circuit):
            circuit = builder(8, seed=3)
            records = compile_sampler(circuit).sample(
                64, np.random.default_rng(0)
            )
            assert records.shape[0] == 64
            assert records.shape[1] == circuit.num_measurements
