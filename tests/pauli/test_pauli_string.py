"""Tests for phase-exact Pauli algebra, validated against dense matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pauli import PauliString, dense_pauli


def random_pauli(seed: int, n_qubits: int) -> PauliString:
    local = np.random.default_rng(seed)
    return PauliString(
        local.integers(0, 2, n_qubits).astype(np.uint8),
        local.integers(0, 2, n_qubits).astype(np.uint8),
        int(local.integers(0, 4)),
    )


pauli_strategy = st.builds(
    random_pauli, seed=st.integers(0, 2**31), n_qubits=st.integers(1, 4)
)


class TestParsing:
    def test_simple(self):
        p = PauliString.from_str("+XYZ_")
        assert str(p) == "+XYZ_"

    def test_negative(self):
        assert str(PauliString.from_str("-ZZ")) == "-ZZ"

    def test_imaginary(self):
        p = PauliString.from_str("iX")
        assert p.phase_exponent == 1
        assert not p.is_hermitian

    def test_identity_char_variants(self):
        assert PauliString.from_str("I_") == PauliString.identity(2)

    def test_invalid_char(self):
        with pytest.raises(ValueError):
            PauliString.from_str("XQ")

    @given(pauli_strategy)
    def test_str_roundtrip(self, p):
        assert PauliString.from_str(str(p)) == p

    def test_single(self):
        p = PauliString.single(4, 2, "Y")
        assert str(p) == "+__Y_"


class TestAlgebraVsDense:
    @settings(max_examples=50, deadline=None)
    @given(pauli_strategy, st.integers(0, 2**31))
    def test_product_matches_dense(self, p, seed):
        q = random_pauli(seed, p.n_qubits)
        product = p * q
        assert np.allclose(
            dense_pauli(product), dense_pauli(p) @ dense_pauli(q)
        )

    @settings(max_examples=50, deadline=None)
    @given(pauli_strategy, st.integers(0, 2**31))
    def test_commutation_matches_dense(self, p, seed):
        q = random_pauli(seed, p.n_qubits)
        pq = dense_pauli(p) @ dense_pauli(q)
        qp = dense_pauli(q) @ dense_pauli(p)
        assert p.commutes_with(q) == np.allclose(pq, qp)

    @settings(max_examples=30, deadline=None)
    @given(pauli_strategy)
    def test_inverse(self, p):
        identity = p * p.inverse()
        assert np.allclose(
            dense_pauli(identity), np.eye(2**p.n_qubits)
        )

    @settings(max_examples=30, deadline=None)
    @given(pauli_strategy)
    def test_hermitian_flag_matches_dense(self, p):
        dense = dense_pauli(p)
        assert p.is_hermitian == np.allclose(dense, dense.conj().T)

    def test_sign_bit(self):
        assert PauliString.from_str("+XY").sign_bit == 0
        assert PauliString.from_str("-XY").sign_bit == 1

    def test_sign_bit_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            PauliString.from_str("iZ").sign_bit


class TestStructure:
    def test_y_is_ixz(self):
        y = PauliString.from_str("Y")
        xz = PauliString.from_str("X") * PauliString.from_str("Z")
        assert np.allclose(dense_pauli(y), 1j * dense_pauli(xz))

    def test_weight(self):
        assert PauliString.from_str("X_Y_Z").weight == 3
        assert PauliString.identity(5).weight == 0

    def test_tensor(self):
        a = PauliString.from_str("X")
        b = PauliString.from_str("-Z")
        assert str(a.tensor(b)) == "-XZ"

    @settings(max_examples=25, deadline=None)
    @given(pauli_strategy, st.integers(0, 2**31))
    def test_tensor_matches_kron(self, p, seed):
        q = random_pauli(seed, 2)
        assert np.allclose(
            dense_pauli(p.tensor(q)),
            np.kron(dense_pauli(p), dense_pauli(q)),
        )

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PauliString.from_str("X") * PauliString.from_str("XX")

    def test_hashable(self):
        a = PauliString.from_str("XZ")
        b = PauliString.from_str("XZ")
        assert len({a, b}) == 1
