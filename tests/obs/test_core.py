"""Span tracing core: enable/disable, nesting, wire round-trip."""

import os
import pickle
import threading

import repro.obs as obs
from repro.obs.core import _NOOP


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        assert obs.span("anything", chunk=3) is _NOOP
        assert obs.span("other") is _NOOP

    def test_noop_span_records_nothing(self):
        with obs.span("quiet", a=1) as sp:
            sp.set(b=2)
        assert obs.drain_spans() == []

    def test_event_records_nothing(self):
        obs.event("quiet")
        assert obs.drain_spans() == []

    def test_flags_default_off(self):
        assert not obs.is_tracing()
        assert not obs.is_metrics()


class TestEnabledSpans:
    def test_span_records_fields(self):
        obs.enable(tracing=True, metrics=False)
        with obs.span("work", chunk=7) as sp:
            sp.set(bytes=123)
        (record,) = obs.drain_spans()
        assert record.name == "work"
        assert record.attrs == {"chunk": 7, "bytes": 123}
        assert record.pid == os.getpid()
        assert record.tid == threading.get_ident()
        assert record.duration >= 0.0
        assert record.cpu >= 0.0
        assert record.parent_id is None

    def test_nesting_links_parent(self):
        obs.enable(tracing=True, metrics=False)
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        inner, outer_rec = obs.drain_spans()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_rec.parent_id is None

    def test_event_is_zero_duration_child(self):
        obs.enable(tracing=True, metrics=False)
        with obs.span("outer") as outer:
            obs.event("mark", k="v")
        mark, _ = obs.drain_spans()
        assert mark.duration == 0.0
        assert mark.parent_id == outer.span_id
        assert mark.attrs == {"k": "v"}

    def test_drain_empties_buffer(self):
        obs.enable(tracing=True, metrics=False)
        with obs.span("once"):
            pass
        assert len(obs.drain_spans()) == 1
        assert obs.drain_spans() == []

    def test_exception_still_records(self):
        obs.enable(tracing=True, metrics=False)
        try:
            with obs.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (record,) = obs.drain_spans()
        assert record.name == "boom"


class TestWireTransport:
    def test_round_trip_preserves_records(self):
        obs.enable(tracing=True, metrics=False)
        with obs.span("a", chunk=1):
            with obs.span("b"):
                pass
        wire = obs.drain_wire_spans()
        assert pickle.loads(pickle.dumps(wire)) == wire
        obs.absorb_spans(wire)
        restored = obs.drain_spans()
        assert [r.name for r in restored] == ["b", "a"]
        assert restored[1].attrs == {"chunk": 1}
        assert restored[0].parent_id == restored[1].span_id

    def test_wire_config_round_trip(self):
        obs.enable(tracing=True, metrics=False)
        config = obs.wire_config()
        obs.disable()
        obs.configure(config)
        assert obs.is_tracing() and not obs.is_metrics()

    def test_to_json_matches_schema(self):
        from repro.obs.schema import validate_span

        obs.enable(tracing=True, metrics=False)
        with obs.span("checked", chunk=2):
            pass
        (record,) = obs.drain_spans()
        validate_span(record.to_json())


class TestReset:
    def test_reset_clears_everything(self):
        obs.enable(tracing=True, metrics=True)
        with obs.span("gone"):
            pass
        obs.counter("gone_total").inc()
        obs.record_timeline(
            obs.ChunkTimeline(
                task_id="t", chunk_index=0, shots=1, pid=1,
                submitted_at=0.0, started_at=0.0, finished_at=0.0,
                received_at=0.0, yielded_at=0.0,
            )
        )
        obs.reset()
        assert not obs.is_tracing() and not obs.is_metrics()
        assert obs.drain_spans() == []
        assert obs.drain_timelines() == []
        assert obs.registry().value("gone_total") is None
