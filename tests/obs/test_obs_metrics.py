"""Metrics registry: series identity, wire deltas, merge contract."""

import math
import pickle

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_rate,
    safe_rate,
)


class TestSeries:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.value("c") == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("s", stage="sample").inc(1)
        reg.counter("s", stage="decode").inc(2)
        assert reg.value("s", stage="sample") == 1
        assert reg.value("s", stage="decode") == 2
        assert reg.value("s") is None

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("s", a="1", b="2").inc()
        assert reg.value("s", b="2", a="1") == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5)
        reg.gauge("g").add(-2)
        assert reg.value("g") == 3

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)
        assert reg.value("h") == 3.0  # histogram value() = count

    def test_histogram_bounds_must_be_sorted(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_select_and_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c", pid="1", kind="a").inc()
        reg.counter("c", pid="2", kind="a").inc()
        reg.counter("other", pid="3").inc()
        assert reg.label_values("c", "pid") == ["1", "2"]
        assert len(reg.select("c", kind="a")) == 2
        assert len(reg.select("c", pid="1")) == 1


class TestWire:
    def test_flush_ships_only_deltas(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        first = worker.flush_wire()
        assert len(first) == 1
        # Nothing changed since: nothing ships.
        assert worker.flush_wire() == ()
        worker.counter("c").inc(2)
        (entry,) = worker.flush_wire()
        kind, name, labels, payload = entry
        assert (kind, name, payload) == ("counter", "c", 2.0)

    def test_merge_accumulates_across_workers(self):
        parent = MetricsRegistry()
        for _ in range(2):
            worker = MetricsRegistry()
            worker.counter("shots", pid="w").inc(100)
            parent.merge_wire(worker.flush_wire())
        assert parent.value("shots", pid="w") == 200

    def test_merge_then_flush_forwards_only_local_delta(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        parent.merge_wire(worker.flush_wire())
        # Merged amounts count as shipped at the parent level too.
        assert parent.flush_wire() == ()
        parent.counter("c").inc(1)
        (entry,) = parent.flush_wire()
        assert entry[3] == 1.0

    def test_histogram_merges_bucket_for_bucket(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.histogram("h").observe(0.003)
        worker.histogram("h").observe(42.0)
        parent.merge_wire(worker.flush_wire())
        h = parent.histogram("h")
        assert h.count == 2
        assert h.sum == pytest.approx(42.003)
        assert h.counts[-1] == 1  # overflow bucket

    def test_histogram_bound_divergence_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(5.0,)).observe(0.5)
        with pytest.raises(ValueError, match="boundaries diverge"):
            parent.merge_wire(worker.flush_wire())

    def test_wire_is_picklable(self):
        worker = MetricsRegistry()
        worker.counter("c", pid="9").inc()
        worker.histogram("h").observe(0.1)
        wire = worker.flush_wire()
        assert pickle.loads(pickle.dumps(wire)) == wire

    def test_gauge_merge_is_last_write(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.gauge("g").set(7)
        parent.gauge("g").set(1)
        parent.merge_wire(worker.flush_wire())
        assert parent.value("g") == 7


class TestModuleRegistry:
    def test_global_wrappers_hit_one_registry(self):
        obs.enable(tracing=False, metrics=True)
        obs.counter("t_total", pid="x").inc()
        assert obs.registry().value("t_total", pid="x") == 1
        wire = obs.flush_wire()
        assert len(wire) == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", pid="1").inc()
        reg.histogram("h").observe(0.2)
        snap = {entry["name"]: entry for entry in reg.snapshot()}
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["labels"] == {"pid": "1"}
        assert snap["h"]["count"] == 1
        assert len(snap["h"]["buckets"]) == len(DEFAULT_BUCKETS)


class TestSafeRate:
    def test_normal_division(self):
        assert safe_rate(10, 2.0) == 5.0

    @pytest.mark.parametrize("seconds", [0, 0.0, -1.0, math.inf, math.nan])
    def test_degenerate_denominators(self, seconds):
        assert safe_rate(100, seconds) is None

    def test_format_rate_dash_when_undefined(self):
        assert format_rate(100, 0.0) == "-"
        assert format_rate(12345, 1.0) == "12,345"
        assert format_rate(1, 3.0, fmt="{:.2f}") == "0.33"
