"""Exporters and schema: JSONL, Chrome trace JSON, Prometheus text."""

import json

import pytest

import repro.obs as obs
from repro.obs.core import SpanRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    validate_chrome_event,
    validate_span,
    validate_trace_file,
)


def _span(name="work", **attrs):
    return SpanRecord(
        name=name, start=1.0, duration=0.5, cpu=0.4, pid=10, tid=2,
        span_id="10:1", parent_id=None, attrs=attrs,
    )


def _timeline(**overrides):
    fields = dict(
        task_id="abcdef0123456789", chunk_index=3, shots=100, pid=10,
        submitted_at=1.0, started_at=1.2, finished_at=1.8,
        received_at=1.9, yielded_at=2.0, spec_bytes=50, result_bytes=70,
    )
    fields.update(overrides)
    return obs.ChunkTimeline(**fields)


class TestJsonl:
    def test_write_and_validate(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = obs.write_spans_jsonl([_span(), _span("other", chunk=1)], path)
        assert count == 2
        assert validate_trace_file(str(path)) == 2
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[1])["attrs"] == {"chunk": 1}

    def test_single_span_file_validates(self, tmp_path):
        path = tmp_path / "one.jsonl"
        obs.write_spans_jsonl([_span()], path)
        assert validate_trace_file(str(path)) == 1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_trace_file(str(path))


class TestChromeTrace:
    def test_events_scale_to_microseconds(self):
        (event,) = obs.chrome_trace_events([_span(chunk=4)])
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"]["chunk"] == 4
        assert event["args"]["span_id"] == "10:1"
        validate_chrome_event(event)

    def test_timelines_become_scheduler_events(self):
        events = obs.chrome_trace_events([], timelines=[_timeline()])
        names = {e["name"] for e in events}
        assert names == {"chunk.queue", "chunk.hold"}
        for event in events:
            assert event["pid"] == 0  # scheduler pseudo-track
            assert event["tid"] == 3
            validate_chrome_event(event)
        queue = next(e for e in events if e["name"] == "chunk.queue")
        assert queue["dur"] == pytest.approx(0.2e6)

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        count = obs.write_chrome_trace(
            [_span()], path, timelines=[_timeline()]
        )
        assert count == 3
        assert validate_trace_file(str(path)) == 3
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_corrupt_event_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        with pytest.raises(ValueError, match="missing required field"):
            validate_trace_file(str(path))


class TestSpanSchema:
    def test_negative_duration_rejected(self):
        bad = _span().to_json()
        bad["duration"] = -1.0
        with pytest.raises(ValueError, match="duration"):
            validate_span(bad)

    def test_bool_pid_rejected(self):
        bad = _span().to_json()
        bad["pid"] = True
        with pytest.raises(ValueError, match="bool"):
            validate_span(bad)

    def test_unknown_field_rejected(self):
        bad = _span().to_json()
        bad["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            validate_span(bad)

    def test_missing_required_rejected(self):
        bad = _span().to_json()
        del bad["span_id"]
        with pytest.raises(ValueError, match="span_id"):
            validate_span(bad)

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.obs.schema import main

        good = tmp_path / "good.json"
        obs.write_chrome_trace([_span()], good)
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"name": ""}]}')
        assert main([str(bad)]) == 1


class TestTimelineDerivations:
    def test_derived_quantities(self):
        timeline = _timeline()
        assert timeline.queue_wait_seconds == pytest.approx(0.2)
        assert timeline.worker_seconds == pytest.approx(0.6)
        assert timeline.return_seconds == pytest.approx(0.1)
        assert timeline.hold_seconds == pytest.approx(0.1)
        assert timeline.latency_seconds == pytest.approx(1.0)
        assert timeline.transport_bytes == 120

    def test_clock_skew_clamped_to_zero(self):
        timeline = _timeline(started_at=0.5)  # "started before submitted"
        assert timeline.queue_wait_seconds == 0.0


class TestPrometheus:
    def test_counter_and_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_shots_total", pid="12").inc(100)
        reg.gauge("repro_window").set(4)
        text = obs.prometheus_text(reg)
        assert "# TYPE repro_shots_total counter" in text
        assert 'repro_shots_total{pid="12"} 100.0' in text
        assert "# TYPE repro_window gauge" in text
        assert "repro_window 4.0" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        text = obs.prometheus_text(reg)
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 11.0" in text
        assert "repro_lat_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc()
        text = obs.prometheus_text(reg)
        assert 'path="a\\"b\\\\c"' in text

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "metrics.prom"
        obs.write_prometheus(reg, path)
        assert path.read_text().endswith("c 1.0\n")
