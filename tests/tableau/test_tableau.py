"""Tests for the concrete A-G tableau."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pauli import PauliString
from repro.tableau import Tableau

from tests.helpers import SINGLE_QUBIT_GATES, TWO_QUBIT_GATES


def random_gate_sequence(tableau, rng, length):
    n = tableau.n
    for _ in range(length):
        if rng.random() < 0.3 and n >= 2:
            a, b = rng.choice(n, 2, replace=False)
            tableau.apply_gate(str(rng.choice(TWO_QUBIT_GATES)), (int(a), int(b)))
        else:
            tableau.apply_gate(
                str(rng.choice(SINGLE_QUBIT_GATES)), (int(rng.integers(n)),)
            )


class TestInitialState:
    def test_initial_stabilizers_are_z(self):
        t = Tableau(3)
        assert [str(p) for p in t.stabilizers()] == ["+Z__", "+_Z_", "+__Z"]

    def test_initial_destabilizers_are_x(self):
        t = Tableau(3)
        assert [str(p) for p in t.destabilizers()] == ["+X__", "+_X_", "+__X"]

    def test_initial_valid(self):
        assert Tableau(5).is_valid()

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            Tableau(0)


class TestGateAction:
    def test_h_creates_plus_state(self):
        t = Tableau(1)
        t.apply_gate("H", (0,))
        assert str(t.stabilizers()[0]) == "+X"

    def test_bell_state_stabilizers(self):
        t = Tableau(2)
        t.apply_gate("H", (0,))
        t.apply_gate("CX", (0, 1))
        assert {str(p) for p in t.stabilizers()} == {"+XX", "+ZZ"}

    def test_x_flips_stabilizer_sign(self):
        t = Tableau(1)
        t.apply_gate("X", (0,))
        assert str(t.stabilizers()[0]) == "-Z"

    def test_apply_pauli_matches_gates(self):
        t1, t2 = Tableau(3), Tableau(3)
        random_gate_sequence(t1, np.random.default_rng(5), 20)
        t2.xs, t2.zs, t2.rs = t1.xs.copy(), t1.zs.copy(), t1.rs.copy()
        t1.apply_gate("X", (0,))
        t1.apply_gate("Z", (2,))
        t2.apply_pauli(PauliString.from_str("X_Z"))
        assert np.array_equal(t1.rs, t2.rs)

    def test_pauli_helpers_match_gates(self):
        for letter, helper in (("X", "apply_x"), ("Y", "apply_y"), ("Z", "apply_z")):
            t1, t2 = Tableau(2), Tableau(2)
            random_gate_sequence(t1, np.random.default_rng(9), 15)
            t2.xs, t2.zs, t2.rs = t1.xs.copy(), t1.zs.copy(), t1.rs.copy()
            t1.apply_gate(letter, (1,))
            getattr(t2, helper)(1)
            assert np.array_equal(t1.rs, t2.rs)
            assert np.array_equal(t1.xs, t2.xs)


class TestValidityInvariant:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 6))
    def test_random_circuits_preserve_validity(self, seed, n):
        rng = np.random.default_rng(seed)
        t = Tableau(n)
        random_gate_sequence(t, rng, 30)
        assert t.is_valid()
        # interleave measurements
        for _ in range(4):
            t.measure(int(rng.integers(n)), rng)
            assert t.is_valid()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_stabilizers_commute_pairwise(self, seed):
        rng = np.random.default_rng(seed)
        t = Tableau(4)
        random_gate_sequence(t, rng, 25)
        stabs = t.stabilizers()
        for i, p in enumerate(stabs):
            for q in stabs[i + 1:]:
                assert p.commutes_with(q)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_stabilizer_rows_hermitian(self, seed):
        rng = np.random.default_rng(seed)
        t = Tableau(4)
        random_gate_sequence(t, rng, 25)
        t.measure(0, rng)
        for p in t.stabilizers():
            assert p.is_hermitian


class TestMeasurement:
    def test_z_basis_deterministic_zero(self, rng):
        t = Tableau(2)
        outcome, was_random = t.measure(0, rng)
        assert (outcome, was_random) == (0, False)

    def test_after_x_gate_deterministic_one(self, rng):
        t = Tableau(1)
        t.apply_gate("X", (0,))
        outcome, was_random = t.measure(0, rng)
        assert (outcome, was_random) == (1, False)

    def test_plus_state_random(self, rng):
        t = Tableau(1)
        t.apply_gate("H", (0,))
        outcome, was_random = t.measure(0, rng)
        assert was_random
        # Second measurement must repeat the first (collapse).
        again, was_random2 = t.measure(0, rng)
        assert not was_random2
        assert again == outcome

    def test_forced_outcome(self, rng):
        t = Tableau(1)
        t.apply_gate("H", (0,))
        outcome, _ = t.measure(0, forced_outcome=1)
        assert outcome == 1

    def test_callable_forced_outcome_only_called_when_random(self):
        t = Tableau(2)
        calls = []

        def provider():
            calls.append(1)
            return 0

        t.measure(0, forced_outcome=provider)  # deterministic: no call
        assert calls == []
        t.apply_gate("H", (1,))
        t.measure(1, forced_outcome=provider)  # random: one call
        assert calls == [1]

    def test_bell_correlations(self, rng):
        for _ in range(20):
            t = Tableau(2)
            t.apply_gate("H", (0,))
            t.apply_gate("CX", (0, 1))
            m0, _ = t.measure(0, rng)
            m1, _ = t.measure(1, rng)
            assert m0 == m1

    def test_random_measurement_without_rng_raises(self):
        t = Tableau(1)
        t.apply_gate("H", (0,))
        with pytest.raises(ValueError):
            t.measure(0)

    def test_peek_determined(self, rng):
        t = Tableau(2)
        assert t.peek_determined(0) == 0
        t.apply_gate("X", (0,))
        assert t.peek_determined(0) == 1
        t.apply_gate("H", (1,))
        assert t.peek_determined(1) is None

    def test_measurement_statistics_uniform(self, rng):
        outcomes = []
        for _ in range(200):
            t = Tableau(1)
            t.apply_gate("H", (0,))
            outcomes.append(t.measure(0, rng)[0])
        assert 0.4 < np.mean(outcomes) < 0.6


class TestCopy:
    def test_copy_is_deep(self):
        t = Tableau(2)
        t.apply_gate("H", (0,))
        c = t.copy()
        before = t.rs.copy()
        c.apply_gate("X", (0,))  # flips c's phases only
        assert np.array_equal(t.rs, before)
        assert not np.array_equal(c.rs, before)
