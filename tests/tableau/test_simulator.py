"""Tests for the single-shot tableau simulator and reference sampling."""

import numpy as np

from repro.circuit import Circuit
from repro.tableau import TableauSimulator, reference_sample


class TestBasicRuns:
    def test_ghz_outcomes_all_equal(self, rng):
        c = Circuit().h(0).cx(0, 1).cx(1, 2).m(0, 1, 2)
        for _ in range(20):
            sim = TableauSimulator(3, rng)
            record = sim.run(c)
            assert record[0] == record[1] == record[2]

    def test_x_then_measure(self, rng):
        c = Circuit().x(0).m(0)
        assert TableauSimulator(1, rng).run(c)[0] == 1

    def test_mx_of_plus_state(self, rng):
        c = Circuit().h(0).append("MX", [0])
        assert TableauSimulator(1, rng).run(c)[0] == 0

    def test_my_of_sqrt_x_state(self, rng):
        # SQRT_X_DAG |0> is the +1 eigenstate of Y.
        c = Circuit().append("SQRT_X_DAG", [0]).append("MY", [0])
        assert TableauSimulator(1, rng).run(c)[0] == 0

    def test_reset_forces_zero(self, rng):
        c = Circuit().h(0).r(0).m(0)
        for _ in range(10):
            assert TableauSimulator(1, rng).run(c)[0] == 0

    def test_reset_x_forces_plus(self, rng):
        c = Circuit().append("RX", [0]).append("MX", [0])
        for _ in range(10):
            assert TableauSimulator(1, rng).run(c)[0] == 0

    def test_mr_records_then_resets(self, rng):
        c = Circuit().x(0).mr(0).m(0)
        record = TableauSimulator(1, rng).run(c)
        assert record[0] == 1  # measured the X-flipped state
        assert record[1] == 0  # then reset to |0>

    def test_noise_disabled_flag(self, rng):
        c = Circuit().x_error(1.0, 0).m(0)
        assert TableauSimulator(1, rng).run(c, disable_noise=True)[0] == 0
        assert TableauSimulator(1, rng).run(c)[0] == 1


class TestNoiseSampling:
    def test_x_error_rate(self, rng):
        c = Circuit().x_error(0.3, 0).m(0)
        flips = [TableauSimulator(1, rng).run(c)[0] for _ in range(500)]
        assert 0.22 < np.mean(flips) < 0.38

    def test_z_error_invisible_in_z_basis(self, rng):
        c = Circuit().z_error(1.0, 0).m(0)
        assert TableauSimulator(1, rng).run(c)[0] == 0

    def test_correlated_error(self, rng):
        c = Circuit.from_text("E(1) X0 X2\nM 0 1 2")
        record = TableauSimulator(3, rng).run(c)
        assert list(record) == [1, 0, 1]

    def test_depolarize2_hits_both_qubits(self, rng):
        c = Circuit().depolarize2(1.0, 0, 1).m(0, 1)
        flipped = 0
        for _ in range(300):
            record = TableauSimulator(2, rng).run(c)
            flipped += record.any()
        # 8 of 15 non-identity pairs flip at least one Z outcome... at
        # least some shots must show a flip.
        assert flipped > 100


class TestReferenceSample:
    def test_deterministic(self):
        c = Circuit().h(0).cx(0, 1).m(0, 1)
        assert np.array_equal(reference_sample(c), reference_sample(c))

    def test_random_outcomes_pinned_to_zero(self):
        c = Circuit().h(0).m(0)
        assert reference_sample(c)[0] == 0

    def test_noise_ignored(self):
        c = Circuit().x_error(1.0, 0).m(0)
        assert reference_sample(c)[0] == 0

    def test_deterministic_logic_preserved(self):
        c = Circuit().x(0).cx(0, 1).m(0, 1)
        assert list(reference_sample(c)) == [1, 1]

    def test_length_matches_num_measurements(self):
        c = Circuit().m(0, 1).mr(2).m(0)
        assert reference_sample(c).size == c.num_measurements


class TestErrors:
    def test_unknown_kind_guard(self, rng):
        sim = TableauSimulator(1, rng)
        c = Circuit().append("TICK")  # annotations are fine
        sim.run(c)
        assert sim.record == []
