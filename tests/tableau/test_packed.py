"""Tests for the qubit-major packed tableau and hybrid simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.tableau import Tableau
from repro.tableau.packed import PackedTableau, simulate_hybrid
from tests.helpers import SINGLE_QUBIT_GATES, TWO_QUBIT_GATES


def assert_same_state(packed: PackedTableau, tableau: Tableau) -> None:
    back = packed.to_tableau()
    assert np.array_equal(back.xs, tableau.xs)
    assert np.array_equal(back.zs, tableau.zs)
    assert np.array_equal(back.rs, tableau.rs)


class TestConversion:
    @pytest.mark.parametrize("n", [1, 2, 31, 32, 33, 64, 100])
    def test_roundtrip_initial(self, n):
        assert_same_state(PackedTableau(n), Tableau(n))

    def test_from_tableau_roundtrip(self, rng):
        t = Tableau(5)
        t.apply_gate("H", (0,))
        t.apply_gate("CX", (0, 3))
        t.measure(0, rng)
        packed = PackedTableau.from_tableau(t)
        assert_same_state(packed, t)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            PackedTableau(0)


class TestGateEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.sampled_from([2, 5, 33, 70]))
    def test_random_gate_sequences(self, seed, n):
        local = np.random.default_rng(seed)
        t = Tableau(n)
        p = PackedTableau(n)
        for _ in range(30):
            if local.random() < 0.4 and n >= 2:
                a, b = local.choice(n, 2, replace=False)
                name, targets = str(local.choice(TWO_QUBIT_GATES)), (int(a), int(b))
            else:
                name, targets = (
                    str(local.choice(SINGLE_QUBIT_GATES)),
                    (int(local.integers(n)),),
                )
            t.apply_gate(name, targets)
            p.apply_gate(name, targets)
        assert_same_state(p, t)

    def test_padding_stays_clear(self):
        # n=33 -> 66 rows -> 2 bits of padding in the second word.
        p = PackedTableau(33)
        for q in range(33):
            p.apply_gate("H", (q,))
            p.apply_gate("X", (q,))
        tail_used = np.uint64((1 << 2) - 1)
        assert not np.any(p.xs[:, -1] & ~p._tail_mask)
        assert not np.any(p.rs[-1] & ~p._tail_mask)
        del tail_used


class TestHybridSimulation:
    def test_ghz_correlations(self):
        c = Circuit().h(0).cx(0, 1).cx(1, 2).m(0, 1, 2)
        for seed in range(10):
            record = simulate_hybrid(c, np.random.default_rng(seed))
            assert record[0] == record[1] == record[2]

    def test_random_outcomes_uniform(self):
        # Every outcome in this circuit is an exact fair coin, so the
        # hybrid simulator's means must sit near 0.5 (5-sigma bound for
        # 400 shots is ~0.125).
        c = Circuit.from_text("""
            H 0
            CX 0 1
            S 1
            MX 0
            M 1
            R 0
            H 0
            M 0
        """)
        hybrid = np.array([
            simulate_hybrid(c, np.random.default_rng(s)) for s in range(400)
        ])
        assert np.allclose(hybrid.mean(axis=0), 0.5, atol=0.125)

    def test_entangled_structure_preserved_across_mode_switches(self):
        # MX 0 and M 1 of a Bell pair rotated by S: outcomes of the pair
        # (m0, m1) must be perfectly correlated in a fixed pattern that
        # the plain simulator also produces: here S|Bell> gives
        # MX0 ^ M1 deterministic? Validate against the plain simulator's
        # *deterministic relations*, not marginals.
        c = Circuit.from_text("H 0\nCX 0 1\nMX 0 \nMX 1")
        for seed in range(30):
            record = simulate_hybrid(c, np.random.default_rng(seed))
            # Bell state is a +1 eigenstate of XX: MX outcomes agree.
            assert record[0] == record[1]

    def test_deterministic_outcomes_exact(self):
        c = Circuit().x(0).cx(0, 1).m(0, 1).r(0, 1).m(0, 1)
        record = simulate_hybrid(c, np.random.default_rng(0))
        assert record.tolist() == [1, 1, 0, 0]

    def test_noise_applies(self):
        c = Circuit().x_error(1.0, 0).m(0)
        assert simulate_hybrid(c, np.random.default_rng(0))[0] == 1

    def test_mode_switch_count_independent_of_result(self):
        # Gate-measure-gate-measure forces two full cycles.
        c = Circuit().h(0).m(0).h(0).m(0).h(0).m(0)
        record = simulate_hybrid(c, np.random.default_rng(3))
        assert record.size == 3
