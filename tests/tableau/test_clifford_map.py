"""Tests for the operator-level CliffordMap, validated against dense
unitaries on small qubit counts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.gates.unitaries import UNITARIES_1Q, UNITARIES_2Q
from repro.pauli import PauliString, dense_pauli
from repro.tableau import CliffordMap


def dense_of_circuit(circuit: Circuit, n: int) -> np.ndarray:
    out = np.eye(2**n, dtype=complex)
    for inst in circuit.flattened():
        name = inst.gate.name
        if name in UNITARIES_1Q:
            for q in inst.targets:
                full = np.array([[1]], dtype=complex)
                for k in range(n):
                    full = np.kron(
                        full, UNITARIES_1Q[name] if k == q else np.eye(2)
                    )
                out = full @ out
        else:
            for a, b in zip(inst.targets[0::2], inst.targets[1::2]):
                # build via permutation-free embedding: only for (0,1) on 2q
                assert n == 2 and (a, b) == (0, 1)
                out = UNITARIES_2Q[name] @ out
    return out


def random_pauli(rng, n):
    p = PauliString(
        rng.integers(0, 2, n).astype(np.uint8),
        rng.integers(0, 2, n).astype(np.uint8),
        0,
    )
    y = int(np.count_nonzero(p.xs & p.zs))
    return PauliString(p.xs, p.zs, y + 2 * int(rng.integers(2)))


class TestIdentity:
    def test_identity_fixes_basis(self):
        ident = CliffordMap.identity(3)
        x1 = PauliString.single(3, 1, "X")
        assert ident.conjugate(x1) == x1

    def test_identity_fixes_arbitrary(self, rng):
        ident = CliffordMap.identity(4)
        for _ in range(5):
            p = random_pauli(rng, 4)
            assert ident.conjugate(p) == p


class TestAgainstDense:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_two_qubit_circuits_match_dense(self, seed):
        local = np.random.default_rng(seed)
        circuit = Circuit()
        for _ in range(8):
            if local.random() < 0.4:
                circuit.append(
                    str(local.choice(["CX", "CZ", "ISWAP", "SQRT_XX"])),
                    [0, 1],
                )
            else:
                circuit.append(
                    str(local.choice(["H", "S", "SQRT_Y", "H_YZ"])),
                    [int(local.integers(2))],
                )
        cmap = CliffordMap.from_circuit(circuit, 2)
        unitary = dense_of_circuit(circuit, 2)
        for letters in ("X_", "Z_", "_X", "_Z", "YY", "XZ"):
            pauli = PauliString.from_str(letters)
            expected = unitary @ dense_pauli(pauli) @ unitary.conj().T
            assert np.allclose(
                dense_pauli(cmap.conjugate(pauli)), expected
            )


class TestGroupStructure:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 4))
    def test_inverse_composes_to_identity(self, seed, n):
        rng = np.random.default_rng(seed)
        cmap = CliffordMap.random(n, rng, depth=30)
        assert cmap.then(cmap.inverse()) == CliffordMap.identity(n)
        assert cmap.inverse().then(cmap) == CliffordMap.identity(n)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_composition_matches_concatenated_circuit(self, seed):
        rng = np.random.default_rng(seed)
        c1 = Circuit().h(0).cx(0, 1).s(1)
        c2 = Circuit().cz(0, 1).append("SQRT_X", [0])
        both = c1 + c2
        composed = CliffordMap.from_circuit(c1, 2).then(
            CliffordMap.from_circuit(c2, 2)
        )
        assert composed == CliffordMap.from_circuit(both, 2)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 4))
    def test_conjugation_preserves_commutation(self, seed, n):
        rng = np.random.default_rng(seed)
        cmap = CliffordMap.random(n, rng, depth=25)
        p = random_pauli(rng, n)
        q = random_pauli(rng, n)
        assert cmap.conjugate(p).commutes_with(cmap.conjugate(q)) == \
            p.commutes_with(q)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 3))
    def test_conjugation_is_homomorphism(self, seed, n):
        rng = np.random.default_rng(seed)
        cmap = CliffordMap.random(n, rng, depth=25)
        p = random_pauli(rng, n)
        q = random_pauli(rng, n)
        assert cmap.conjugate(p * q) == cmap.conjugate(p) * cmap.conjugate(q)


class TestValidation:
    def test_rejects_measurement_circuits(self):
        with pytest.raises(ValueError):
            CliffordMap.from_circuit(Circuit().h(0).m(0))

    def test_rejects_odd_images(self):
        with pytest.raises(ValueError):
            CliffordMap([PauliString.from_str("X")])

    def test_rejects_non_hermitian_images(self):
        with pytest.raises(ValueError):
            CliffordMap([
                PauliString.from_str("iX"), PauliString.from_str("Z"),
            ])

    def test_str_rendering(self):
        text = str(CliffordMap.identity(1))
        assert "X0 -> +X" in text and "Z0 -> +Z" in text
