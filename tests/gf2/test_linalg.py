"""Tests for dense GF(2) elimination."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.linalg import inverse, nullspace, rank, rref, solve

matrix_strategy = st.builds(
    lambda rows, cols, seed: (
        np.random.default_rng(seed).random((rows, cols)) < 0.5
    ).astype(np.uint8),
    rows=st.integers(1, 20),
    cols=st.integers(1, 20),
    seed=st.integers(0, 2**31),
)


class TestRref:
    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy)
    def test_pivots_are_unit_columns(self, m):
        reduced, pivots = rref(m)
        for row, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row] == 1
            assert column.sum() == 1

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy)
    def test_row_space_preserved(self, m):
        reduced, _ = rref(m)
        # Every original row must be a combination of reduced rows and
        # vice versa: equal rank of stacked systems.
        assert rank(np.vstack([m, reduced])) == rank(m) == rank(reduced)

    def test_input_not_modified(self):
        m = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        original = m.copy()
        rref(m)
        assert np.array_equal(m, original)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            rref(np.zeros(4, dtype=np.uint8))


class TestRank:
    def test_identity(self):
        assert rank(np.eye(5, dtype=np.uint8)) == 5

    def test_zero(self):
        assert rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_duplicate_rows(self):
        m = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        assert rank(m) == 2


class TestSolve:
    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy, st.integers(0, 2**31))
    def test_consistent_systems_solved(self, m, seed):
        local = np.random.default_rng(seed)
        x_true = (local.random(m.shape[1]) < 0.5).astype(np.uint8)
        rhs = (m @ x_true) % 2
        x = solve(m, rhs)
        assert x is not None
        assert np.array_equal((m @ x) % 2, rhs)

    def test_inconsistent_returns_none(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        assert solve(m, np.array([1, 0], dtype=np.uint8)) is None

    def test_bad_rhs_shape(self):
        with pytest.raises(ValueError):
            solve(np.eye(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestNullspace:
    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy)
    def test_vectors_annihilated(self, m):
        basis = nullspace(m)
        for vector in basis:
            assert not np.any((m @ vector) % 2)

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy)
    def test_dimension_formula(self, m):
        assert nullspace(m).shape[0] == m.shape[1] - rank(m)

    def test_basis_independent(self):
        m = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        basis = nullspace(m)
        assert rank(basis) == basis.shape[0]


class TestInverse:
    def test_identity(self):
        eye = np.eye(4, dtype=np.uint8)
        assert np.array_equal(inverse(eye), eye)

    def test_roundtrip(self, rng):
        # Random invertible matrix via random row operations on identity.
        m = np.eye(6, dtype=np.uint8)
        for _ in range(40):
            a, b = rng.choice(6, 2, replace=False)
            m[a] ^= m[b]
        inv = inverse(m)
        assert np.array_equal((m @ inv) % 2, np.eye(6, dtype=np.uint8))

    def test_singular_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            inverse(np.zeros((2, 2), dtype=np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            inverse(np.zeros((2, 3), dtype=np.uint8))
