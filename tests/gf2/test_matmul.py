"""Tests for GF(2) matmul kernels against a naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2 import bitops
from repro.gf2.matmul import mul_dense, mul_packed_abt, mul_sparse_columns


def naive_mod2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a.astype(np.int64) @ b.astype(np.int64)) % 2


class TestMulDense:
    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 40), k=st.integers(1, 40), n=st.integers(1, 40),
        seed=st.integers(0, 2**31),
    )
    def test_matches_naive(self, m, k, n, seed):
        local = np.random.default_rng(seed)
        a = (local.random((m, k)) < 0.5).astype(np.uint8)
        b = (local.random((k, n)) < 0.5).astype(np.uint8)
        assert np.array_equal(mul_dense(a, b), naive_mod2(a, b))

    def test_uint8_overflow_preserves_parity(self):
        # 300 ones summed wraps past 255 in uint8; parity must survive.
        a = np.ones((1, 300), dtype=np.uint8)
        b = np.ones((300, 1), dtype=np.uint8)
        assert mul_dense(a, b)[0, 0] == 0
        b[0, 0] = 0
        assert mul_dense(a, b)[0, 0] == 1

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            mul_dense(np.zeros((2, 3), dtype=np.uint8),
                      np.zeros((4, 2), dtype=np.uint8))


class TestMulPackedAbt:
    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 30), n=st.integers(1, 30), k=st.integers(1, 200),
        seed=st.integers(0, 2**31),
    )
    def test_matches_naive(self, m, n, k, seed):
        local = np.random.default_rng(seed)
        a = (local.random((m, k)) < 0.5).astype(np.uint8)
        b = (local.random((n, k)) < 0.5).astype(np.uint8)
        out = mul_packed_abt(bitops.pack_rows(a), bitops.pack_rows(b))
        assert np.array_equal(out, naive_mod2(a, b.T))

    def test_chunking_consistent(self, rng):
        a = (rng.random((600, 100)) < 0.5).astype(np.uint8)
        b = (rng.random((10, 100)) < 0.5).astype(np.uint8)
        ap, bp = bitops.pack_rows(a), bitops.pack_rows(b)
        assert np.array_equal(
            mul_packed_abt(ap, bp, row_chunk=7),
            mul_packed_abt(ap, bp, row_chunk=1024),
        )

    def test_word_count_mismatch(self):
        with pytest.raises(ValueError):
            mul_packed_abt(np.zeros((2, 1), dtype=np.uint64),
                           np.zeros((2, 2), dtype=np.uint64))


class TestMulSparseColumns:
    def test_matches_dense_path(self, rng):
        k, shots = 50, 300
        b = (rng.random((k, shots)) < 0.5).astype(np.uint8)
        b_packed = bitops.pack_rows(b)
        supports = [
            np.sort(rng.choice(k, size=rng.integers(0, 6), replace=False))
            for _ in range(20)
        ]
        out = mul_sparse_columns(supports, b_packed)
        dense_out = bitops.unpack_rows(out, shots)
        for i, support in enumerate(supports):
            expected = b[support].sum(axis=0) % 2 if len(support) else 0
            assert np.array_equal(dense_out[i], np.broadcast_to(expected, (shots,)))

    def test_empty_support_is_zero(self):
        b = np.ones((3, 1), dtype=np.uint64)
        out = mul_sparse_columns([np.array([], dtype=np.int64)], b)
        assert out[0, 0] == 0

    def test_constants_flip_rows(self, rng):
        b = bitops.pack_rows((rng.random((4, 64)) < 0.5).astype(np.uint8))
        supports = [np.array([0]), np.array([1])]
        plain = mul_sparse_columns(supports, b)
        flipped = mul_sparse_columns(supports, b, constants=np.array([1, 0]))
        assert np.array_equal(flipped[0], ~plain[0])
        assert np.array_equal(flipped[1], plain[1])
