"""Unit tests for packed bit-vector primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gf2 import bitops


class TestWordsFor:
    def test_zero(self):
        assert bitops.words_for(0) == 0

    def test_exact_boundaries(self):
        assert bitops.words_for(64) == 1
        assert bitops.words_for(65) == 2
        assert bitops.words_for(128) == 2

    def test_small(self):
        assert bitops.words_for(1) == 1
        assert bitops.words_for(63) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.words_for(-1)


class TestBitToWord:
    def test_first_bit(self):
        word, mask = bitops.bit_to_word(0)
        assert word == 0 and mask == 1

    def test_word_boundary(self):
        word, mask = bitops.bit_to_word(64)
        assert word == 1 and mask == 1

    def test_high_bit(self):
        word, mask = bitops.bit_to_word(63)
        assert word == 0 and mask == np.uint64(1) << np.uint64(63)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.bit_to_word(-3)


class TestPackUnpack:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    def test_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        packed = bitops.pack_bits(arr)
        assert packed.dtype == np.uint64
        assert packed.size == bitops.words_for(arr.size)
        recovered = bitops.unpack_bits(packed, arr.size)
        assert np.array_equal(recovered, arr)

    def test_bit_positions_little_endian(self):
        bits = np.zeros(70, dtype=np.uint8)
        bits[0] = 1
        bits[65] = 1
        packed = bitops.pack_bits(bits)
        assert packed[0] == 1
        assert packed[1] == 2

    def test_padding_is_zero(self):
        packed = bitops.pack_bits(np.ones(65, dtype=np.uint8))
        assert packed[1] == 1  # only bit 64 set, not the padding

    def test_rows_roundtrip(self, rng):
        bits = (rng.random((17, 131)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        assert packed.shape == (17, 3)
        assert np.array_equal(bitops.unpack_rows(packed, 131), bits)

    def test_pack_rows_rejects_1d(self):
        with pytest.raises(ValueError):
            bitops.pack_rows(np.zeros(5, dtype=np.uint8))

    def test_pack_bits_rejects_2d(self):
        with pytest.raises(ValueError):
            bitops.pack_bits(np.zeros((2, 2), dtype=np.uint8))


class TestBitAccess:
    def test_get_set_roundtrip(self):
        words = np.zeros(3, dtype=np.uint64)
        for index in (0, 1, 63, 64, 100, 191):
            bitops.set_bit(words, index, 1)
            assert bitops.get_bit(words, index) == 1
            bitops.set_bit(words, index, 0)
            assert bitops.get_bit(words, index) == 0

    def test_xor_bit_twice_is_identity(self):
        words = np.zeros(2, dtype=np.uint64)
        bitops.xor_bit(words, 70)
        assert bitops.get_bit(words, 70) == 1
        bitops.xor_bit(words, 70)
        assert bitops.get_bit(words, 70) == 0

    def test_xor_bit_zero_value_noop(self):
        words = np.zeros(1, dtype=np.uint64)
        bitops.xor_bit(words, 5, 0)
        assert words[0] == 0

    def test_get_column(self, rng):
        bits = (rng.random((10, 80)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        for col in (0, 63, 64, 79):
            assert np.array_equal(bitops.get_column(packed, col), bits[:, col])


class TestParityPopcount:
    def test_popcount(self):
        words = np.array([0, 1, 3, 2**64 - 1], dtype=np.uint64)
        assert np.array_equal(bitops.popcount(words), [0, 1, 2, 64])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_parity_matches_sum(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        packed = bitops.pack_bits(arr)
        assert bitops.parity_words(packed) == arr.sum() % 2

    def test_parity_axis(self, rng):
        bits = (rng.random((8, 130)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        expected = bits.sum(axis=1) % 2
        assert np.array_equal(bitops.parity_words(packed, axis=1), expected)


class TestRandomPacked:
    def test_padding_bits_clear(self, rng):
        out = bitops.random_packed((50, 2), 100, rng)
        tail_mask = ~np.uint64((1 << 36) - 1)
        assert not np.any(out[:, 1] & tail_mask)

    def test_shape_checked(self, rng):
        with pytest.raises(ValueError):
            bitops.random_packed((5, 1), 100, rng)

    def test_biased_probability(self, rng):
        out = bitops.random_packed((200, 2), 128, rng, p=0.1)
        density = bitops.popcount(out).sum() / (200 * 128)
        assert 0.05 < density < 0.15

    def test_fair_probability(self, rng):
        out = bitops.random_packed((200, 2), 128, rng)
        density = bitops.popcount(out).sum() / (200 * 128)
        assert 0.45 < density < 0.55


class TestXorSelectRows:
    def test_basic_xor(self, rng):
        bits = (rng.random((6, 100)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        out = bitops.xor_select_rows(packed, [[0, 2, 5], [1], []])
        expected = np.stack([
            bits[0] ^ bits[2] ^ bits[5],
            bits[1],
            np.zeros(100, dtype=np.uint8),
        ])
        assert np.array_equal(bitops.unpack_rows(out, 100), expected)

    def test_empty_lists_only(self):
        packed = np.zeros((3, 2), dtype=np.uint64)
        out = bitops.xor_select_rows(packed, [[], []])
        assert out.shape == (2, 2)
        assert not out.any()

    def test_no_lists(self):
        packed = np.ones((3, 2), dtype=np.uint64)
        out = bitops.xor_select_rows(packed, [])
        assert out.shape == (0, 2)

    def test_repeated_index_cancels(self, rng):
        bits = (rng.random((2, 64)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        out = bitops.xor_select_rows(packed, [[0, 0], [0, 0, 1]])
        assert not out[0].any()
        assert np.array_equal(bitops.unpack_rows(out[1:], 64)[0], bits[1])

    def test_accepts_numpy_index_arrays(self, rng):
        bits = (rng.random((4, 70)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        lists = [np.array([1, 3], dtype=np.int64), np.array([], dtype=np.int64)]
        out = bitops.xor_select_rows(packed, lists)
        assert np.array_equal(
            bitops.unpack_rows(out, 70)[0], bits[1] ^ bits[3]
        )

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            bitops.xor_select_rows(np.zeros(3, dtype=np.uint64), [[0]])

    @given(st.integers(0, 2**32))
    def test_matches_dense_reference(self, seed):
        local = np.random.default_rng(seed)
        n_rows, n_cols = int(local.integers(1, 9)), int(local.integers(1, 140))
        bits = (local.random((n_rows, n_cols)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        lists = [
            list(local.integers(0, n_rows, size=local.integers(0, 6)))
            for _ in range(int(local.integers(1, 5)))
        ]
        out = bitops.xor_select_rows(packed, lists)
        for i, indices in enumerate(lists):
            expected = np.zeros(n_cols, dtype=np.uint8)
            for j in indices:
                expected ^= bits[j]
            assert np.array_equal(
                bitops.unpack_rows(out[i:i + 1], n_cols)[0], expected
            )


class TestPackedRowKernels:
    @staticmethod
    def random_rows(seed, n_rows=40, n_bits=150, p=0.03):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n_rows, n_bits)) < p).astype(np.uint8)
        dense[rng.integers(0, n_rows, size=n_rows // 4)] = 0  # zero rows
        if n_rows >= 2:
            dense[-1] = dense[0]  # guaranteed duplicate
        return dense, bitops.pack_rows(dense)

    @pytest.mark.parametrize("seed", range(5))
    def test_popcount_rows_matches_dense_sum(self, seed):
        dense, packed = self.random_rows(seed)
        assert np.array_equal(
            bitops.popcount_rows(packed), dense.sum(axis=1, dtype=np.int64)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_nonzero_rows_matches_dense_any(self, seed):
        dense, packed = self.random_rows(seed)
        assert np.array_equal(
            bitops.nonzero_rows_packed(packed),
            np.flatnonzero(dense.any(axis=1)),
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_dedupe_matches_dense_unique_set(self, seed):
        dense, packed = self.random_rows(seed)
        unique, inverse = bitops.dedupe_rows_packed(packed)
        # Reconstruction must be exact even though the unique-row order
        # is the void-sort order, not the dense lexicographic order.
        assert np.array_equal(unique[inverse], packed)
        dense_unique = np.unique(dense, axis=0)
        assert unique.shape[0] == dense_unique.shape[0]
        assert np.array_equal(
            np.unique(bitops.unpack_rows(unique, dense.shape[1]), axis=0),
            dense_unique,
        )

    def test_dedupe_zero_width_and_empty(self):
        empty = np.zeros((0, 3), dtype=np.uint64)
        unique, inverse = bitops.dedupe_rows_packed(empty)
        assert unique.shape == (0, 3) and inverse.size == 0
        zero_width = np.zeros((5, 0), dtype=np.uint64)
        unique, inverse = bitops.dedupe_rows_packed(zero_width)
        assert unique.shape == (1, 0)
        assert np.array_equal(inverse, np.zeros(5, dtype=np.int64))

    @pytest.mark.parametrize("seed", range(5))
    def test_xor_rows_any_matches_dense(self, seed):
        dense_a, packed_a = self.random_rows(seed)
        dense_b, packed_b = self.random_rows(seed + 100)
        assert np.array_equal(
            bitops.xor_rows_any(packed_a, packed_b),
            (dense_a != dense_b).any(axis=1),
        )
        assert not bitops.xor_rows_any(packed_a, packed_a).any()

    def test_xor_rows_any_shape_checked(self):
        with pytest.raises(ValueError):
            bitops.xor_rows_any(
                np.zeros((2, 3), dtype=np.uint64),
                np.zeros((2, 2), dtype=np.uint64),
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_nonzero_bits_matches_dense_nonzero(self, seed):
        dense, packed = self.random_rows(seed)
        rows, bits = bitops.nonzero_bits(packed)
        ref_rows, ref_bits = np.nonzero(dense)
        assert np.array_equal(rows, ref_rows)
        assert np.array_equal(bits, ref_bits)

    def test_nonzero_bits_empty(self):
        rows, bits = bitops.nonzero_bits(np.zeros((4, 2), dtype=np.uint64))
        assert rows.size == 0 and bits.size == 0
