"""Tests for the BitMatrix wrapper."""

import numpy as np
import pytest

from repro.gf2 import BitMatrix


class TestConstruction:
    def test_zero_matrix(self):
        m = BitMatrix(3, 70)
        assert m.to_dense().shape == (3, 70)
        assert not m.to_dense().any()

    def test_from_dense_roundtrip(self, rng):
        bits = (rng.random((9, 130)) < 0.5).astype(np.uint8)
        assert np.array_equal(BitMatrix.from_dense(bits).to_dense(), bits)

    def test_identity(self):
        eye = BitMatrix.identity(5)
        assert np.array_equal(eye.to_dense(), np.eye(5, dtype=np.uint8))

    def test_random_has_right_density(self, rng):
        m = BitMatrix.random(50, 128, rng)
        density = m.to_dense().mean()
        assert 0.4 < density < 0.6

    def test_bad_word_shape_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix(2, 65, np.zeros((2, 1), dtype=np.uint64))

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix(-1, 4)


class TestElementAccess:
    def test_get_set(self):
        m = BitMatrix(4, 100)
        m[2, 99] = 1
        assert m[2, 99] == 1
        assert m[2, 98] == 0
        m[2, 99] = 0
        assert m[2, 99] == 0

    def test_equality(self, rng):
        bits = (rng.random((5, 5)) < 0.5).astype(np.uint8)
        a = BitMatrix.from_dense(bits)
        b = BitMatrix.from_dense(bits)
        assert a == b
        b[0, 0] = 1 - b[0, 0]
        assert a != b


class TestRowColumnOps:
    def test_xor_row_into(self, rng):
        bits = (rng.random((6, 90)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        m.xor_row_into(1, 4)
        bits[4] ^= bits[1]
        assert np.array_equal(m.to_dense(), bits)

    def test_swap_rows(self, rng):
        bits = (rng.random((6, 90)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        m.swap_rows(0, 5)
        assert np.array_equal(m.to_dense(), bits[[5, 1, 2, 3, 4, 0]])

    def test_xor_column_into(self, rng):
        bits = (rng.random((20, 70)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        m.xor_column_into(3, 68)
        bits[:, 68] ^= bits[:, 3]
        assert np.array_equal(m.to_dense(), bits)

    def test_swap_columns(self, rng):
        bits = (rng.random((20, 70)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        m.swap_columns(0, 65)
        expected = bits.copy()
        expected[:, [0, 65]] = expected[:, [65, 0]]
        assert np.array_equal(m.to_dense(), expected)

    def test_get_column(self, rng):
        bits = (rng.random((15, 80)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        assert np.array_equal(m.get_column(77), bits[:, 77])


class TestTranspose:
    def test_matches_dense(self, rng):
        bits = (rng.random((33, 140)) < 0.5).astype(np.uint8)
        m = BitMatrix.from_dense(bits)
        assert np.array_equal(m.transpose().to_dense(), bits.T)

    def test_copy_is_independent(self):
        m = BitMatrix.identity(3)
        c = m.copy()
        c[0, 1] = 1
        assert m[0, 1] == 0
