"""Tests for bit-level transposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2 import bitops
from repro.gf2.transpose import transpose_bitmatrix, transpose_words_64


class TestTranspose64:
    def test_identity_fixed(self):
        eye = bitops.pack_rows(np.eye(64, dtype=np.uint8))[:, 0]
        assert np.array_equal(transpose_words_64(eye), eye)

    def test_single_bit_moves(self):
        block = np.zeros(64, dtype=np.uint64)
        block[3] = np.uint64(1) << np.uint64(10)  # bit (3, 10)
        out = transpose_words_64(block)
        expected = np.zeros(64, dtype=np.uint64)
        expected[10] = np.uint64(1) << np.uint64(3)
        assert np.array_equal(out, expected)

    def test_matches_dense_transpose(self, rng):
        bits = (rng.random((64, 64)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)[:, 0]
        out = transpose_words_64(packed)
        assert np.array_equal(bitops.unpack_rows(out[:, None], 64), bits.T)

    def test_involution(self, rng):
        block = rng.integers(0, 2**64, 64, dtype=np.uint64)
        assert np.array_equal(
            transpose_words_64(transpose_words_64(block)), block
        )

    def test_batched_blocks(self, rng):
        blocks = rng.integers(0, 2**64, (5, 7, 64), dtype=np.uint64)
        out = transpose_words_64(blocks)
        for i in range(5):
            for j in range(7):
                assert np.array_equal(
                    out[i, j], transpose_words_64(blocks[i, j])
                )

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            transpose_words_64(np.zeros(32, dtype=np.uint64))


class TestTransposeBitmatrix:
    @settings(max_examples=30, deadline=None)
    @given(
        n_rows=st.integers(1, 150),
        n_cols=st.integers(1, 150),
        seed=st.integers(0, 2**31),
    )
    def test_matches_dense(self, n_rows, n_cols, seed):
        local = np.random.default_rng(seed)
        bits = (local.random((n_rows, n_cols)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        out = transpose_bitmatrix(packed, n_rows, n_cols)
        assert out.shape == (n_cols, bitops.words_for(n_rows))
        assert np.array_equal(bitops.unpack_rows(out, n_rows), bits.T)

    def test_involution(self, rng):
        bits = (rng.random((90, 200)) < 0.5).astype(np.uint8)
        packed = bitops.pack_rows(bits)
        back = transpose_bitmatrix(
            transpose_bitmatrix(packed, 90, 200), 200, 90
        )
        assert np.array_equal(back, packed)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transpose_bitmatrix(np.zeros((3, 1), dtype=np.uint64), 3, 65)

    def test_output_padding_clear(self, rng):
        bits = np.ones((70, 3), dtype=np.uint8)
        packed = bitops.pack_rows(bits)
        out = transpose_bitmatrix(packed, 70, 3)
        # Output rows have 70 valid bits in 2 words; bits 70..127 must be 0.
        tail = out[:, 1] >> np.uint64(6)
        assert not np.any(tail)
